/**
 * @file
 * Unit tests for src/base: formatting, RNG, env knobs, parallel
 * fork-join, interval scheduling and table rendering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "base/env.hh"
#include "base/interval_schedule.hh"
#include "base/logging.hh"
#include "base/parallel.hh"
#include "base/random.hh"
#include "base/table.hh"

namespace difftune
{
namespace
{

// ---------------------------------------------------------------- fmtStr

TEST(FmtStr, SubstitutesPlaceholders)
{
    EXPECT_EQ(fmtStr("x={} y={}", 1, 2.5), "x=1 y=2.5");
}

TEST(FmtStr, NoPlaceholders)
{
    EXPECT_EQ(fmtStr("plain"), "plain");
}

TEST(FmtStr, ExtraArgumentsAppended)
{
    EXPECT_EQ(fmtStr("a={}", 1, 2), "a=1 2");
}

TEST(FmtStr, LiteralBracesWithoutArgs)
{
    EXPECT_EQ(fmtStr("keep {}"), "keep {}");
}

TEST(FmtStr, StringsAndChars)
{
    EXPECT_EQ(fmtStr("{}/{}", std::string("a"), "b"), "a/b");
}

// ---------------------------------------------------------------- logging

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatalImpl("f", 1, "boom"), std::runtime_error);
}

TEST(Logging, FatalIfRespectsCondition)
{
    EXPECT_NO_THROW(fatal_if(false, "no"));
    EXPECT_THROW(fatal_if(true, "yes"), std::runtime_error);
}

TEST(Logging, VerboseToggle)
{
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.uniformInt(-3, 12);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 12);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 5));
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformIntApproximatelyUniform)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(0, 9)];
    for (int c : counts)
        EXPECT_NEAR(c, draws / 10, draws / 100);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(10);
    std::vector<double> weights = {1.0, 3.0, 0.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(double(counts[1]) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(12);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependent)
{
    Rng a(1);
    Rng child = a.fork();
    EXPECT_NE(child.next(), a.next());
}

// -------------------------------------------------------------------- env

TEST(Env, DefaultsWhenUnset)
{
    unsetenv("DIFFTUNE_TEST_VAR");
    EXPECT_EQ(envDouble("DIFFTUNE_TEST_VAR", 1.5), 1.5);
    EXPECT_EQ(envLong("DIFFTUNE_TEST_VAR", 42), 42);
    EXPECT_EQ(envString("DIFFTUNE_TEST_VAR", "d"), "d");
}

TEST(Env, ParsesValues)
{
    setenv("DIFFTUNE_TEST_VAR", "2.25", 1);
    EXPECT_EQ(envDouble("DIFFTUNE_TEST_VAR", 0.0), 2.25);
    setenv("DIFFTUNE_TEST_VAR", "17", 1);
    EXPECT_EQ(envLong("DIFFTUNE_TEST_VAR", 0), 17);
    unsetenv("DIFFTUNE_TEST_VAR");
}

TEST(Env, ScaledCountHasFloor)
{
    EXPECT_GE(scaledCount(100, 10), 10);
}

// --------------------------------------------------------------- parallel

TEST(Parallel, VisitsEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, 8, [&](size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroItems)
{
    int calls = 0;
    parallelFor(0, 4, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(Parallel, SingleWorkerSerial)
{
    std::vector<int> order;
    parallelShards(10, 1, [&](size_t b, size_t e, int shard) {
        EXPECT_EQ(shard, 0);
        for (size_t i = b; i < e; ++i)
            order.push_back(int(i));
    });
    EXPECT_EQ(order.size(), 10u);
}

TEST(Parallel, ShardsCoverRangeDisjointly)
{
    std::vector<std::atomic<int>> hits(997);
    parallelShards(997, 7, [&](size_t b, size_t e, int) {
        for (size_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, NestedCallsDoNotDeadlock)
{
    std::atomic<int> total{0};
    parallelFor(8, 4, [&](size_t) {
        parallelFor(8, 4, [&](size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

// ---------------------------------------------------- interval scheduling

TEST(UnitSchedule, EmptyIsImmediatelyFree)
{
    UnitSchedule unit;
    EXPECT_EQ(unit.nextFree(5, 3), 5);
}

TEST(UnitSchedule, ReservationPushesBack)
{
    UnitSchedule unit;
    unit.reserve(5, 3); // busy [5, 8)
    EXPECT_EQ(unit.nextFree(5, 1), 8);
    EXPECT_EQ(unit.nextFree(0, 5), 0); // fits before
    EXPECT_EQ(unit.nextFree(0, 6), 8); // does not fit before
}

TEST(UnitSchedule, GapFilling)
{
    UnitSchedule unit;
    unit.reserve(0, 2);  // [0,2)
    unit.reserve(10, 2); // [10,12)
    EXPECT_EQ(unit.nextFree(0, 3), 2);  // gap [2,10)
    EXPECT_EQ(unit.nextFree(0, 9), 12); // too long for the gap
}

TEST(UnitSchedule, AdjacentIntervalsMerge)
{
    UnitSchedule unit;
    unit.reserve(0, 2);
    unit.reserve(2, 2);
    EXPECT_EQ(unit.numIntervals(), 1u);
    EXPECT_EQ(unit.nextFree(0, 1), 4);
}

TEST(UnitSchedule, PruneDropsPast)
{
    UnitSchedule unit;
    unit.reserve(0, 1);
    unit.reserve(5, 1);
    unit.prune(3);
    EXPECT_EQ(unit.numIntervals(), 1u);
}

TEST(UnitSchedule, ZeroOccupancyIgnored)
{
    UnitSchedule unit;
    unit.reserve(3, 0);
    EXPECT_EQ(unit.numIntervals(), 0u);
}

TEST(PoolSchedule, UsesAllUnits)
{
    PoolSchedule pool(2);
    EXPECT_EQ(pool.acquire(0, 4), 0); // unit 0: [0,4)
    EXPECT_EQ(pool.acquire(0, 4), 0); // unit 1: [0,4)
    EXPECT_EQ(pool.acquire(0, 4), 4); // both busy
}

TEST(PoolSchedule, BackfillsIdleWindows)
{
    PoolSchedule pool(1);
    EXPECT_EQ(pool.acquire(10, 2), 10);
    // A later request with an earlier ready time fits before.
    EXPECT_EQ(pool.acquire(0, 2), 0);
}

TEST(PortSchedule, JointAcquisitionWaitsForAll)
{
    PortSchedule ports(3);
    EXPECT_EQ(ports.acquireJoint({{0, 2}}, 0), 0); // port0 [0,2)
    // Needs ports 0 and 1 simultaneously; port0 busy until 2.
    EXPECT_EQ(ports.acquireJoint({{0, 1}, {1, 1}}, 0), 2);
}

TEST(PortSchedule, EmptyRequirementIssuesAtReady)
{
    PortSchedule ports(2);
    EXPECT_EQ(ports.acquireJoint({}, 7), 7);
}

TEST(PortSchedule, ThroughputOnePerCycle)
{
    PortSchedule ports(1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ports.acquireJoint({{0, 1}}, 0), i);
}

TEST(PortSchedule, DifferentOccupanciesPerPort)
{
    PortSchedule ports(2);
    // Hold port0 for 3 and port1 for 1 starting together.
    EXPECT_EQ(ports.acquireJoint({{0, 3}, {1, 1}}, 0), 0);
    // Port1 frees at 1, port0 at 3: joint needs both -> 3.
    EXPECT_EQ(ports.acquireJoint({{0, 1}, {1, 1}}, 0), 3);
    // Port1-only work backfills the [1,3) window.
    EXPECT_EQ(ports.acquireJoint({{1, 1}}, 0), 1);
}

// ------------------------------------------------------------------ table

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table({"a", "bb"});
    table.addRow({"1", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(TextTable, SeparatorRows)
{
    TextTable table({"x"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    const std::string out = table.render();
    // 5 separator lines: top, under header, explicit, bottom... and
    // the header separator.
    EXPECT_GE(std::count(out.begin(), out.end(), '+'), 8);
}

TEST(TextTable, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(1.234, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.254, 1), "25.4%");
    EXPECT_EQ(fmtPercent(1.02, 1), "102.0%");
}

} // namespace
} // namespace difftune
