/**
 * @file
 * Tests for metrics: MAPE, Kendall's tau (validated against a brute-
 * force O(n^2) reference with ties), summary statistics, histograms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "stats/histogram.hh"
#include "stats/metrics.hh"

namespace difftune::stats
{
namespace
{

TEST(Mape, Basics)
{
    EXPECT_DOUBLE_EQ(mape({1.0, 2.0}, {1.0, 2.0}), 0.0);
    EXPECT_DOUBLE_EQ(mape({2.0}, {1.0}), 1.0);
    EXPECT_DOUBLE_EQ(mape({0.5}, {1.0}), 0.5);
    EXPECT_NEAR(mape({2.0, 3.0}, {1.0, 2.0}), 0.75, 1e-12);
}

TEST(Mape, CanExceedOneHundredPercent)
{
    // Paper note: error above 100% when predictions are much larger.
    EXPECT_GT(mape({10.0}, {1.0}), 1.0);
}

TEST(Mape, SkipsZeroTruth)
{
    EXPECT_DOUBLE_EQ(mape({5.0, 2.0}, {0.0, 2.0}), 0.0);
}

TEST(Mape, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mape({}, {}), 0.0);
}

// Brute-force tau-b reference.
double
tauRef(const std::vector<double> &x, const std::vector<double> &y)
{
    const size_t n = x.size();
    long concordant = 0, discordant = 0, tx = 0, ty = 0;
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j) {
            const double dx = x[i] - x[j], dy = y[i] - y[j];
            if (dx == 0 && dy == 0) {
                ++tx;
                ++ty;
            } else if (dx == 0) {
                ++tx;
            } else if (dy == 0) {
                ++ty;
            } else if (dx * dy > 0) {
                ++concordant;
            } else {
                ++discordant;
            }
        }
    const double n0 = double(n) * (n - 1) / 2;
    const double denom =
        std::sqrt(n0 - double(tx)) * std::sqrt(n0 - double(ty));
    if (denom == 0)
        return 0.0;
    return double(concordant - discordant) / denom;
}

TEST(KendallTau, PerfectOrder)
{
    EXPECT_DOUBLE_EQ(kendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(KendallTau, ReversedOrder)
{
    EXPECT_DOUBLE_EQ(kendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
}

TEST(KendallTau, TinyInputs)
{
    EXPECT_DOUBLE_EQ(kendallTau({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(kendallTau({1.0}, {2.0}), 0.0);
}

TEST(KendallTau, AllTiesIsZero)
{
    EXPECT_DOUBLE_EQ(kendallTau({1, 1, 1}, {2, 3, 4}), 0.0);
}

class TauRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TauRandomTest, MatchesBruteForce)
{
    Rng rng(GetParam());
    const int n = 60 + GetParam() * 13;
    std::vector<double> x(n), y(n);
    for (int i = 0; i < n; ++i) {
        // Quantized values create plenty of ties.
        x[i] = double(rng.uniformInt(0, 15));
        y[i] = double(rng.uniformInt(0, 15)) + 0.25 * x[i];
    }
    EXPECT_NEAR(kendallTau(x, y), tauRef(x, y), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TauRandomTest,
                         ::testing::Range(1, 13));

TEST(KendallTau, ContinuousRandomMatches)
{
    Rng rng(77);
    std::vector<double> x(300), y(300);
    for (int i = 0; i < 300; ++i) {
        x[i] = rng.normal();
        y[i] = 0.4 * x[i] + rng.normal();
    }
    EXPECT_NEAR(kendallTau(x, y), tauRef(x, y), 1e-12);
    EXPECT_GT(kendallTau(x, y), 0.1);
}

TEST(Summary, MeanStddevMedian)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.01);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    IntHistogram hist(5);
    hist.add(0.2);   // -> 0
    hist.add(1.6);   // -> 2
    hist.add(9.0);   // clamp -> 5
    hist.add(-2.0);  // clamp -> 0
    EXPECT_EQ(hist.count(0), 2);
    EXPECT_EQ(hist.count(2), 1);
    EXPECT_EQ(hist.count(5), 1);
    EXPECT_EQ(hist.total(), 4);
}

TEST(Histogram, RenderContainsCounts)
{
    IntHistogram a(2), b(2);
    a.add(0);
    b.add(1);
    const std::string out = a.renderVersus(b, "dflt", "lrnd");
    EXPECT_NE(out.find("dflt"), std::string::npos);
    EXPECT_NE(out.find("lrnd"), std::string::npos);
}

} // namespace
} // namespace difftune::stats
