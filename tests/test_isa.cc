/**
 * @file
 * Unit and property tests for the synthetic ISA: opcode registry,
 * instruction construction semantics, printing/parsing round-trips
 * and token encoding.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/isa.hh"
#include "isa/parse.hh"
#include "isa/tokens.hh"

namespace difftune::isa
{
namespace
{

// -------------------------------------------------------------- registers

TEST(Registers, NamesRoundTrip)
{
    EXPECT_EQ(regFromName("rax"), RegId(0));
    EXPECT_EQ(regFromName("eax"), RegId(0));
    EXPECT_EQ(regFromName("rsp"), stackPointer);
    EXPECT_EQ(regFromName("xmm3"), RegId(firstVec + 3));
    EXPECT_EQ(regFromName("ymm3"), RegId(firstVec + 3));
    EXPECT_EQ(regFromName("flags"), flagsReg);
    EXPECT_EQ(regFromName("nope"), invalidReg);
}

TEST(Registers, NameWidths)
{
    EXPECT_EQ(regName(0, 64), "rax");
    EXPECT_EQ(regName(0, 32), "eax");
    EXPECT_EQ(regName(firstVec, 128), "xmm0");
    EXPECT_EQ(regName(firstVec, 256), "ymm0");
}

TEST(Registers, Classes)
{
    EXPECT_EQ(regClass(3), RegClass::Gpr);
    EXPECT_EQ(regClass(firstVec + 1), RegClass::Vec);
    EXPECT_EQ(regClass(flagsReg), RegClass::Flags);
    EXPECT_TRUE(isGpr(5));
    EXPECT_FALSE(isGpr(firstVec));
    EXPECT_TRUE(isVec(firstVec + 15));
}

// --------------------------------------------------------------- registry

TEST(Isa, TableSizeIsStable)
{
    // ~200 opcodes as designed; exact count is part of the public
    // contract because parameter-table layouts depend on it.
    EXPECT_EQ(theIsa().numOpcodes(), 201u);
}

TEST(Isa, LookupByName)
{
    const Isa &isa = theIsa();
    for (const char *name :
         {"ADD32rr", "XOR32rr", "PUSH64r", "SHR64mi", "MOV64rm",
          "VFMADD256rr", "DIV64r", "NOP", "LEA64r"}) {
        EXPECT_NE(isa.opcodeByName(name), invalidOpcode) << name;
    }
    EXPECT_EQ(isa.opcodeByName("BOGUS"), invalidOpcode);
}

TEST(Isa, NamesAreUnique)
{
    const Isa &isa = theIsa();
    for (OpcodeId id = 0; id < isa.numOpcodes(); ++id)
        EXPECT_EQ(isa.opcodeByName(isa.info(id).name), id);
}

TEST(Isa, ClassQueries)
{
    const Isa &isa = theIsa();
    EXPECT_FALSE(isa.opcodesOfClass(OpClass::IntAlu).empty());
    EXPECT_FALSE(isa.opcodesOfClass(OpClass::VecFma).empty());
    EXPECT_FALSE(isa.opcodesWithMem(MemMode::LoadStore).empty());
    for (OpcodeId id : isa.opcodesOfClass(OpClass::IntDiv))
        EXPECT_TRUE(isa.info(id).usesRaxRdx);
}

TEST(Isa, ZeroIdiomFlags)
{
    const Isa &isa = theIsa();
    EXPECT_TRUE(isa.info(isa.opcodeByName("XOR32rr")).zeroIdiom);
    EXPECT_TRUE(isa.info(isa.opcodeByName("SUB64rr")).zeroIdiom);
    EXPECT_TRUE(isa.info(isa.opcodeByName("VPXOR128rr")).zeroIdiom);
    EXPECT_FALSE(isa.info(isa.opcodeByName("ADD32rr")).zeroIdiom);
}

TEST(Isa, PureMoveFlags)
{
    const Isa &isa = theIsa();
    EXPECT_TRUE(isa.info(isa.opcodeByName("MOV64rr")).pureMove);
    EXPECT_TRUE(isa.info(isa.opcodeByName("VMOVAPS128rr")).pureMove);
    EXPECT_FALSE(isa.info(isa.opcodeByName("MOVSX64rr32")).pureMove);
    EXPECT_FALSE(isa.info(isa.opcodeByName("MOV64rm")).pureMove);
}

// ----------------------------------------------------------- construction

Instruction
make(const char *name, std::vector<RegId> slots, MemRef mem = {},
     int64_t imm = 0)
{
    OpcodeId op = theIsa().opcodeByName(name);
    EXPECT_NE(op, invalidOpcode) << name;
    return makeInstruction(op, std::move(slots), mem, imm);
}

bool
reads(const Instruction &inst, RegId reg)
{
    return std::count(inst.reads.begin(), inst.reads.end(), reg) > 0;
}

bool
writes(const Instruction &inst, RegId reg)
{
    return std::count(inst.writes.begin(), inst.writes.end(), reg) > 0;
}

TEST(MakeInstruction, RmwForm)
{
    auto inst = make("ADD32rr", {1, 2});
    EXPECT_TRUE(reads(inst, 1));
    EXPECT_TRUE(reads(inst, 2));
    EXPECT_TRUE(writes(inst, 1));
    EXPECT_FALSE(writes(inst, 2));
    EXPECT_TRUE(writes(inst, flagsReg));
}

TEST(MakeInstruction, CompareWritesOnlyFlags)
{
    auto inst = make("CMP64rr", {1, 2});
    EXPECT_TRUE(reads(inst, 1));
    EXPECT_TRUE(reads(inst, 2));
    EXPECT_EQ(inst.writes.size(), 1u);
    EXPECT_TRUE(writes(inst, flagsReg));
}

TEST(MakeInstruction, LoadReadsBase)
{
    auto inst = make("MOV64rm", {4}, MemRef{5, 16});
    EXPECT_TRUE(reads(inst, 5));
    EXPECT_TRUE(writes(inst, 4));
    EXPECT_EQ(inst.mem.base, 5);
    EXPECT_EQ(inst.mem.disp, 16);
}

TEST(MakeInstruction, StoreReadsValueAndBase)
{
    auto inst = make("MOV64mr", {4}, MemRef{5, 0});
    EXPECT_TRUE(reads(inst, 4));
    EXPECT_TRUE(reads(inst, 5));
    EXPECT_TRUE(inst.writes.empty());
}

TEST(MakeInstruction, PushImplicitRsp)
{
    auto inst = make("PUSH64r", {1});
    EXPECT_TRUE(reads(inst, 1));
    EXPECT_TRUE(reads(inst, stackPointer));
    EXPECT_TRUE(writes(inst, stackPointer));
    EXPECT_EQ(inst.mem.base, stackPointer);
}

TEST(MakeInstruction, DivImplicitRaxRdx)
{
    auto inst = make("DIV64r", {6});
    EXPECT_TRUE(reads(inst, 0));
    EXPECT_TRUE(reads(inst, 3));
    EXPECT_TRUE(writes(inst, 0));
    EXPECT_TRUE(writes(inst, 3));
}

TEST(MakeInstruction, FlagConsumerReadsFlags)
{
    auto inst = make("CMOV64rr", {1, 2});
    EXPECT_TRUE(reads(inst, flagsReg));
}

TEST(MakeInstruction, ZeroIdiomDetection)
{
    EXPECT_TRUE(make("XOR32rr", {3, 3}).isZeroIdiom());
    EXPECT_FALSE(make("XOR32rr", {3, 4}).isZeroIdiom());
    // Vector three-operand form: idiom when the two sources match.
    EXPECT_TRUE(
        make("VPXOR128rr", {RegId(firstVec), RegId(firstVec + 1),
                            RegId(firstVec + 1)})
            .isZeroIdiom());
    EXPECT_FALSE(
        make("VPXOR128rr", {RegId(firstVec), RegId(firstVec + 1),
                            RegId(firstVec + 2)})
            .isZeroIdiom());
    // Zero idioms must KEEP their reads (llvm-mca's view).
    EXPECT_FALSE(make("XOR32rr", {3, 3}).reads.empty());
}

TEST(MakeInstruction, WrongSlotCountPanics)
{
    OpcodeId op = theIsa().opcodeByName("ADD32rr");
    EXPECT_DEATH(makeInstruction(op, {1}), "register operands");
}

TEST(BasicBlock, HashDiscriminates)
{
    BasicBlock a, b;
    a.insts.push_back(make("ADD32rr", {1, 2}));
    b.insts.push_back(make("ADD32rr", {1, 3}));
    EXPECT_NE(a.hash(), b.hash());
    BasicBlock c;
    c.insts.push_back(make("ADD32rr", {1, 2}));
    EXPECT_EQ(a.hash(), c.hash());
}

// -------------------------------------------------- print/parse round-trip

/** Pick plausible slot registers for an opcode. */
std::vector<RegId>
defaultSlots(const OpcodeInfo &op)
{
    std::vector<RegId> slots;
    for (size_t i = 0; i < op.numRegOps(); ++i)
        slots.push_back(op.isVector ? RegId(firstVec + 1 + i)
                                    : RegId(1 + i));
    return slots;
}

class RoundTripTest : public ::testing::TestWithParam<OpcodeId>
{
};

TEST_P(RoundTripTest, PrintParsePreservesInstruction)
{
    const OpcodeInfo &op = theIsa().info(GetParam());
    MemRef mem;
    if (op.mem != MemMode::None && !op.stackOp)
        mem = MemRef{2, 24};
    int64_t imm = op.hasImm ? 7 : 0;
    if (op.opClass == OpClass::Shift)
        imm = op.hasImm ? 3 : 0;
    Instruction inst =
        makeInstruction(GetParam(), defaultSlots(op), mem, imm);
    Instruction reparsed = parseInstruction(toString(inst));
    EXPECT_EQ(reparsed.opcode, inst.opcode) << toString(inst);
    EXPECT_EQ(reparsed.slots, inst.slots) << toString(inst);
    EXPECT_EQ(reparsed.reads, inst.reads) << toString(inst);
    EXPECT_EQ(reparsed.writes, inst.writes) << toString(inst);
    EXPECT_EQ(reparsed.imm, inst.imm) << toString(inst);
    EXPECT_EQ(reparsed.mem.base, inst.mem.base) << toString(inst);
    EXPECT_EQ(reparsed.mem.disp, inst.mem.disp) << toString(inst);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTripTest,
    ::testing::Range(OpcodeId(0), OpcodeId(theIsa().numOpcodes())),
    [](const auto &info) { return theIsa().info(info.param).name; });

TEST(Parse, BlockSkipsCommentsAndBlanks)
{
    BasicBlock block = parseBlock("# comment\n\nADD32rr %ebx, %ecx\n");
    EXPECT_EQ(block.size(), 1u);
}

TEST(Parse, RejectsUnknownOpcode)
{
    EXPECT_THROW(parseInstruction("FROB %eax"), std::runtime_error);
}

TEST(Parse, RejectsMissingOperand)
{
    EXPECT_THROW(parseInstruction("ADD32rr %eax"), std::runtime_error);
}

TEST(Parse, RejectsUnknownRegister)
{
    EXPECT_THROW(parseInstruction("ADD32rr %eax, %zzz"),
                 std::runtime_error);
}

// ----------------------------------------------------------------- tokens

TEST(Tokens, VocabLayout)
{
    const TokenVocab &vocab = theVocab();
    EXPECT_EQ(vocab.size(), theIsa().numOpcodes() + numRegs + 5);
    EXPECT_EQ(vocab.opcodeToken(5), 5);
    EXPECT_EQ(vocab.regToken(0), TokenId(theIsa().numOpcodes()));
}

TEST(Tokens, EncodeShape)
{
    auto inst = make("ADD32rr", {1, 2});
    auto tokens = theVocab().encode(inst);
    // opcode, <S>, r1, r2, <D>, r1, flags, <E>
    EXPECT_EQ(tokens.size(), 8u);
    EXPECT_EQ(tokens.front(), theVocab().opcodeToken(inst.opcode));
    EXPECT_EQ(tokens.back(), theVocab().endMarker());
}

TEST(Tokens, MemAndImmTokens)
{
    auto inst = make("ADD32mi", {}, MemRef{2, 8}, 5);
    auto tokens = theVocab().encode(inst);
    EXPECT_NE(std::find(tokens.begin(), tokens.end(),
                        theVocab().memToken()),
              tokens.end());
    EXPECT_NE(std::find(tokens.begin(), tokens.end(),
                        theVocab().constToken()),
              tokens.end());
}

TEST(Tokens, BlockEncoding)
{
    BasicBlock block = parseBlock("ADD32rr %ebx, %ecx\nNOP\n");
    auto encoded = theVocab().encode(block);
    EXPECT_EQ(encoded.size(), 2u);
    // Every token in range.
    for (const auto &seq : encoded)
        for (TokenId t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(size_t(t), theVocab().size());
        }
}

} // namespace
} // namespace difftune::isa
