/**
 * @file
 * Tests for the DiffTune core: evaluation, the raw-table
 * reparameterization, normalization, masking, and a miniature
 * end-to-end pipeline smoke test.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/difftune.hh"
#include "core/evaluate.hh"
#include "core/ithemal.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

namespace difftune::core
{
namespace
{

const bhive::Corpus &
testCorpus()
{
    static const bhive::Corpus corpus = bhive::Corpus::generate(300, 77);
    return corpus;
}

const bhive::Dataset &
testDataset()
{
    static const bhive::Dataset dataset(testCorpus(),
                                        hw::Uarch::Haswell);
    return dataset;
}

TEST(Evaluate, MatchesManualMape)
{
    const auto &dataset = testDataset();
    mca::XMca sim;
    auto table = hw::defaultTable(hw::Uarch::Haswell);
    EvalResult result = evaluate(sim, table, dataset, dataset.test());
    ASSERT_EQ(result.predictions.size(), dataset.test().size());

    double manual = 0.0;
    for (size_t i = 0; i < dataset.test().size(); ++i) {
        const auto &entry = dataset.test()[i];
        manual += std::fabs(result.predictions[i] - entry.timing) /
                  entry.timing;
    }
    manual /= double(dataset.test().size());
    EXPECT_NEAR(result.error, manual, 1e-12);
    EXPECT_GT(result.kendallTau, 0.3);
}

TEST(Evaluate, PredictionsMatchSimulator)
{
    const auto &dataset = testDataset();
    mca::XMca sim;
    auto table = hw::defaultTable(hw::Uarch::Haswell);
    EvalResult result = evaluate(sim, table, dataset, dataset.valid());
    for (size_t i = 0; i < 5 && i < dataset.valid().size(); ++i) {
        const auto &entry = dataset.valid()[i];
        EXPECT_DOUBLE_EQ(result.predictions[i],
                         sim.timing(dataset.block(entry), table));
    }
}

TEST(Normalizer, ScalesFollowSamplingDist)
{
    ParamNormalizer norm(params::SamplingDist::full());
    EXPECT_EQ(norm.paramDim(), params::perOpcodeParams + 2);
    EXPECT_NEAR(norm.perOpcode[0], 1.0 / 9.0, 1e-12);  // uops 1..10
    EXPECT_NEAR(norm.perOpcode[1], 1.0 / 5.0, 1e-12);  // wl 0..5
    EXPECT_NEAR(norm.globals[1], 1.0 / 200.0, 1e-12);  // rob 50..250
}

TEST(RawTable, RoundTripsActualValues)
{
    params::ParamTable init(isa::theIsa().numOpcodes());
    init.dispatchWidth = 6;
    init.reorderBufferSize = 120;
    init.perOpcode[4].writeLatency = 3;
    init.perOpcode[4].numMicroOps = 2;
    init.perOpcode[9].portMap[7] = 2;

    ParamNormalizer norm(params::SamplingDist::full());
    RawTable raw(init, norm);
    params::ParamTable back = raw.toParamTable();
    EXPECT_NEAR(back.dispatchWidth, 6, 1e-9);
    EXPECT_NEAR(back.reorderBufferSize, 120, 1e-9);
    EXPECT_NEAR(back.perOpcode[4].writeLatency, 3, 1e-9);
    EXPECT_NEAR(back.perOpcode[4].numMicroOps, 2, 1e-9);
    EXPECT_NEAR(back.perOpcode[9].portMap[7], 2, 1e-9);
}

TEST(RawTable, AbsReparameterization)
{
    // Negative raw values map to the same actual values as positive.
    params::ParamTable init(isa::theIsa().numOpcodes());
    ParamNormalizer norm(params::SamplingDist::full());
    RawTable raw(init, norm);
    // Force a raw entry negative via params() and check |raw| + lb.
    raw.params()[0].at(0, 1) = -2.5; // WriteLatency raw of opcode 0
    EXPECT_NEAR(raw.toParamTable().perOpcode[0].writeLatency, 2.5,
                1e-12);
    raw.params()[1].data[0] = -3.0; // DispatchWidth raw
    EXPECT_NEAR(raw.toParamTable().dispatchWidth, 4.0, 1e-12);
}

TEST(RawTable, EnforceMaskRestoresBase)
{
    params::ParamTable base(isa::theIsa().numOpcodes());
    base.perOpcode[2].numMicroOps = 3;
    base.dispatchWidth = 4;
    params::ParamTable init(base);
    init.perOpcode[2].numMicroOps = 7;
    init.perOpcode[2].writeLatency = 5;
    init.dispatchWidth = 9;

    ParamNormalizer norm(params::SamplingDist::writeLatencyOnly());
    RawTable raw(init, norm);
    raw.enforceMask(params::ParamMask::writeLatencyOnly(), base);
    params::ParamTable result = raw.toParamTable();
    EXPECT_NEAR(result.perOpcode[2].numMicroOps, 3, 1e-9);
    EXPECT_NEAR(result.dispatchWidth, 4, 1e-9);
    EXPECT_NEAR(result.perOpcode[2].writeLatency, 5, 1e-9); // kept
}

TEST(RawTable, ParamInputsShapeAndGradients)
{
    params::ParamTable init(isa::theIsa().numOpcodes());
    ParamNormalizer norm(params::SamplingDist::full());
    RawTable raw(init, norm);

    auto block = isa::parseBlock("ADD32rr %ebx, %ecx\nNOP\n");
    nn::Grads grads(raw.params());
    nn::Graph graph;
    auto inputs = raw.paramInputs(graph, block, &grads);
    ASSERT_EQ(inputs.size(), 2u);
    EXPECT_EQ(graph.value(inputs[0]).rows, norm.paramDim());

    // Backprop a loss touching instruction 0's inputs: the gradient
    // must land in the raw per-opcode matrix row of its opcode.
    nn::Var loss = graph.lossMse(graph.slice(inputs[0], 1, 1), 1.0);
    graph.backward(loss);
    const auto add_op = isa::theIsa().opcodeByName("ADD32rr");
    double row_grad = 0.0;
    for (int c = 0; c < params::perOpcodeParams; ++c)
        row_grad += std::fabs(grads[0].at(int(add_op), c));
    EXPECT_GT(row_grad, 0.0);
}

TEST(ConstParamInputs, MatchTableValues)
{
    params::ParamTable table(isa::theIsa().numOpcodes());
    const auto add_op = isa::theIsa().opcodeByName("ADD32rr");
    table.perOpcode[add_op].writeLatency = 5.0;
    table.dispatchWidth = 10.0;
    ParamNormalizer norm(params::SamplingDist::full());

    nn::Graph graph;
    auto block = isa::parseBlock("ADD32rr %ebx, %ecx\n");
    auto inputs = constParamInputs(graph, table, block, norm);
    const auto &v = graph.value(inputs[0]);
    // WriteLatency 5 normalized by 1/5 -> soft-clamped ~0.83.
    EXPECT_NEAR(v.data[1], 1.25 * std::tanh(1.0 / 1.25), 1e-9);
    // DispatchWidth (10-1)/9 = 1 -> same clamp value.
    EXPECT_NEAR(v.data[params::perOpcodeParams], v.data[1], 1e-9);
}

TEST(Ithemal, TrainsAndBeatsTrivialBaseline)
{
    IthemalConfig cfg;
    cfg.model.hidden = 24;
    cfg.model.embedDim = 16;
    cfg.model.tokenLayers = 1;
    cfg.model.blockLayers = 1;
    cfg.epochs = 14;
    Ithemal ithemal(testDataset(), cfg);
    ithemal.train();
    EvalResult result = ithemal.evaluate(testDataset().test());

    // Baseline: always predict the train-set mean timing. The tiny
    // model on the tiny corpus (far below Table IV scale) must still
    // clearly beat it, both in error and in ordering.
    double mean_timing = 0.0;
    for (const auto &entry : testDataset().train())
        mean_timing += entry.timing;
    mean_timing /= double(testDataset().train().size());
    std::vector<double> trivial(testDataset().test().size(),
                                mean_timing);
    EvalResult trivial_eval =
        evaluatePredictions(std::move(trivial), testDataset().test());
    EXPECT_LT(result.error, 0.8 * trivial_eval.error);
    EXPECT_GT(result.kendallTau, 0.40);
}

TEST(DiffTune, MiniPipelineImprovesOverRandom)
{
    DiffTuneConfig cfg;
    cfg.model.hidden = 16;
    cfg.model.embedDim = 12;
    cfg.model.tokenLayers = 1;
    cfg.model.blockLayers = 1;
    cfg.simulatedMultiple = 3;
    cfg.surrogateLoops = 3;
    cfg.tableEpochs = 12;
    cfg.refineRounds = 1;
    cfg.snapshotEvery = 4;
    cfg.seed = 3;

    mca::XMca sim;
    auto base = hw::defaultTable(hw::Uarch::Haswell);
    DiffTune difftune(sim, testDataset(), base, cfg);
    DiffTuneResult result = difftune.run();

    // A random table from the sampling distribution is far worse than
    // whatever the pipeline learned.
    Rng rng(123);
    auto random_table = cfg.dist.sample(rng, base);
    EvalResult random_eval =
        evaluate(sim, random_table, testDataset(), testDataset().test());
    EvalResult learned_eval =
        evaluate(sim, result.learned, testDataset(), testDataset().test());
    EXPECT_LT(learned_eval.error, random_eval.error);
    EXPECT_GT(result.simulatorEvals, 0);
    EXPECT_LT(result.surrogateFidelity, 1.0);

    // Extraction produced a valid integer table.
    auto flat = result.learned.flatten();
    auto bounds = params::flatLowerBounds(result.learned.numOpcodes());
    for (size_t i = 0; i < flat.size(); ++i) {
        EXPECT_GE(flat[i], bounds[i]);
        EXPECT_EQ(flat[i], std::round(flat[i]));
    }
}

TEST(DiffTune, MaskedRunKeepsBaseParams)
{
    DiffTuneConfig cfg;
    cfg.model.hidden = 12;
    cfg.model.embedDim = 8;
    cfg.model.tokenLayers = 1;
    cfg.model.blockLayers = 1;
    cfg.simulatedMultiple = 2;
    cfg.surrogateLoops = 2;
    cfg.tableEpochs = 4;
    cfg.refineRounds = 0;
    cfg.snapshotEvery = 2;
    cfg.dist = params::SamplingDist::writeLatencyOnly();
    cfg.seed = 5;

    mca::XMca sim;
    auto base = hw::defaultTable(hw::Uarch::Haswell);
    DiffTune difftune(sim, testDataset(), base, cfg);
    DiffTuneResult result = difftune.run();

    EXPECT_EQ(result.learned.dispatchWidth, base.dispatchWidth);
    for (size_t op = 0; op < base.numOpcodes(); ++op) {
        EXPECT_EQ(result.learned.perOpcode[op].numMicroOps,
                  std::max(1.0, std::round(base.perOpcode[op]
                                               .numMicroOps)));
        EXPECT_EQ(result.learned.perOpcode[op].portMap,
                  base.perOpcode[op].portMap);
    }
}

} // namespace
} // namespace difftune::core
