/**
 * @file
 * Tests for serving API v2 (serve::AsyncEngine): snapshot sharing
 * across shards and engines (per-engine weight allocations must not
 * scale with the worker count), bit-equality of concurrent
 * submission with the sequential reference across thread counts and
 * random interleavings, micro-batcher behavior (submitAll groups,
 * coalescing), shutdown draining, error propagation through
 * futures, atomic-stats reconciliation, and the sharded LRU cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <future>
#include <thread>
#include <unordered_set>

#include "base/random.hh"
#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "serve/engine.hh"

namespace difftune::serve
{
namespace
{

surrogate::ModelConfig
tinyConfig(int param_dim)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = param_dim;
    cfg.seed = 5;
    return cfg;
}

io::Checkpoint
ithemalCheckpoint()
{
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(0), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    return ckpt;
}

io::Checkpoint
surrogateCheckpoint()
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(norm.paramDim()), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    ckpt.dist = dist;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    return ckpt;
}

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/** Canonical texts of a generated corpus. */
std::vector<std::string>
corpusTexts(size_t count, uint64_t seed)
{
    const auto corpus = bhive::Corpus::generate(count, seed);
    std::vector<std::string> texts;
    texts.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        texts.push_back(isa::toString(corpus[i].block));
    return texts;
}

TEST(AsyncEngine, SnapshotSharedByAllShards)
{
    AsyncConfig cfg;
    cfg.workers = 4;
    AsyncEngine engine(surrogateCheckpoint(), cfg);
    // All shard executors borrow one snapshot: the shared_ptr is
    // referenced by the engine itself plus one per shard, and no
    // shard holds a private copy of any derived table.
    EXPECT_GE(engine.snapshotPtr().use_count(), 1 + engine.workers());
}

TEST(AsyncEngine, WeightAllocationsDoNotScaleWithWorkers)
{
    // The acceptance assertion for snapshot sharing: serve the same
    // workload with 1 and with 4 workers in f32 (the mode that
    // copies weights at all) and require identical derived-weight
    // residency — pre-v2, 4 workers meant 4 f32 panels and 4
    // projection-table sets.
    const auto texts = corpusTexts(24, 0xa57c);
    size_t bytes[2] = {0, 0};
    const int workers[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        AsyncConfig cfg;
        cfg.workers = workers[i];
        cfg.precision = nn::Precision::kF32;
        AsyncEngine engine(surrogateCheckpoint(), cfg);
        engine.predictAll(texts); // materialize panels + projections
        bytes[i] = engine.sharedWeightBytes();
        EXPECT_GT(bytes[i], 0u);
    }
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(AsyncEngine, EnginesShareOneArtifactSnapshot)
{
    io::ModelSnapshot artifact =
        io::makeModelSnapshot(surrogateCheckpoint());
    AsyncEngine a(artifact);
    AsyncEngine b(artifact);
    EXPECT_EQ(&a.snapshot(), &b.snapshot());
    // And the shared snapshot serves both engines bit-identically.
    const auto texts = corpusTexts(8, 0x11);
    for (const auto &text : texts)
        EXPECT_TRUE(sameBits(a.predict(text), b.predict(text)));
}

TEST(AsyncEngine, SubmitMatchesSequentialReference)
{
    AsyncEngine engine(ithemalCheckpoint());
    PredictionEngine reference(ithemalCheckpoint());
    const auto texts = corpusTexts(16, 0x22);
    for (const auto &text : texts) {
        std::future<double> future = engine.submit(text);
        EXPECT_TRUE(sameBits(future.get(), reference.predict(text)));
    }
}

TEST(AsyncEngine, ConcurrentInterleavedSubmissionIsBitExact)
{
    // N client threads, each submitting the whole workload in its
    // own random order, against a sequential reference: every
    // result must be bit-identical regardless of thread count,
    // arrival order or how the micro-batcher slices the stream.
    const auto texts = corpusTexts(32, 0x33);
    PredictionEngine reference(surrogateCheckpoint());
    std::vector<double> expected;
    expected.reserve(texts.size());
    for (const auto &text : texts)
        expected.push_back(reference.predict(text));

    for (int threads : {2, 5}) {
        AsyncEngine engine(surrogateCheckpoint());
        std::atomic<int> mismatches{0};
        std::vector<std::thread> clients;
        clients.reserve(size_t(threads));
        for (int t = 0; t < threads; ++t) {
            clients.emplace_back([&, t] {
                std::vector<size_t> order(texts.size());
                for (size_t i = 0; i < order.size(); ++i)
                    order[i] = i;
                Rng rng(uint64_t(t) * 977 + 13);
                for (size_t i = order.size(); i > 1; --i)
                    std::swap(order[i - 1],
                              order[size_t(rng.uniformInt(
                                  0, int64_t(i) - 1))]);
                for (size_t i : order)
                    if (!sameBits(engine.submit(texts[i]).get(),
                                  expected[i]))
                        ++mismatches;
            });
        }
        for (auto &client : clients)
            client.join();
        EXPECT_EQ(mismatches.load(), 0) << threads << " threads";
        // Reconciliation: every request was answered exactly once.
        const ServeStats &stats = engine.stats();
        EXPECT_EQ(stats.requests,
                  uint64_t(threads) * texts.size());
        EXPECT_EQ(stats.textHits + stats.textMisses, stats.requests);
        EXPECT_EQ(stats.hits + stats.misses, stats.requests);
        EXPECT_LE(stats.forwards, stats.misses);
        // Every distinct canonical block must have been forwarded
        // at least once to be served at all.
        const std::unordered_set<std::string> unique(texts.begin(),
                                                     texts.end());
        EXPECT_GE(stats.forwards, unique.size());
    }
}

TEST(AsyncEngine, SubmitAllGroupMatchesPredictAll)
{
    const auto texts = corpusTexts(20, 0x44);
    AsyncEngine grouped(ithemalCheckpoint());
    AsyncEngine sync(ithemalCheckpoint());
    std::vector<std::future<double>> futures =
        grouped.submitAll(texts);
    const std::vector<double> direct = sync.predictAll(texts);
    ASSERT_EQ(futures.size(), direct.size());
    for (size_t i = 0; i < futures.size(); ++i)
        EXPECT_TRUE(sameBits(futures[i].get(), direct[i]))
            << "block " << i;
}

TEST(AsyncEngine, MicroBatcherCoalescesUnderMaxBatch)
{
    // A submitAll group larger than maxBatch must split into
    // multiple executed batches; one no larger than maxBatch must
    // not add batches beyond the group flush.
    const auto texts = corpusTexts(30, 0x55);
    AsyncConfig cfg;
    cfg.maxBatch = 8;
    AsyncEngine engine(ithemalCheckpoint(), cfg);
    for (std::future<double> &future : engine.submitAll(texts))
        future.get();
    const uint64_t batches = engine.stats().batches;
    EXPECT_GE(batches, uint64_t(texts.size() + 7) / 8);
}

TEST(AsyncEngine, ShutdownDrainsPendingFutures)
{
    const auto texts = corpusTexts(24, 0x66);
    AsyncEngine engine(ithemalCheckpoint());
    PredictionEngine reference(ithemalCheckpoint());
    std::vector<std::future<double>> futures;
    futures.reserve(texts.size());
    for (const auto &text : texts)
        futures.push_back(engine.submit(text));
    // Shut down immediately: every already-submitted future must
    // still complete, with the correct bits.
    engine.shutdown();
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(
            sameBits(futures[i].get(), reference.predict(texts[i])));
    // Intake is closed afterwards.
    EXPECT_THROW(engine.submit(texts[0]), std::runtime_error);
    // shutdown is idempotent.
    engine.shutdown();
}

TEST(AsyncEngine, SubmitAfterShutdownThrowsCatchableError)
{
    // Regression: submit/submitAll on a stopped engine used to hit
    // fatal_if — noisy and indistinguishable from a real invariant
    // violation. A draining engine is an expected serving state
    // (difftuned answers it with a "draining" wire status), so both
    // entry points must throw the dedicated, quiet error type.
    const auto texts = corpusTexts(4, 0x99);
    AsyncEngine engine(ithemalCheckpoint());
    EXPECT_TRUE(sameBits(engine.submit(texts[0]).get(),
                         engine.predict(texts[0])));
    engine.shutdown();
    EXPECT_THROW(engine.submit(texts[0]), EngineStoppedError);
    EXPECT_THROW(engine.submitAll(texts), EngineStoppedError);
    // The rejections leave the counters reconciled: requests ==
    // hits + misses still holds for the lifetime totals.
    const auto &stats = engine.stats();
    EXPECT_EQ(stats.requests.load(),
              stats.hits.load() + stats.misses.load());
}

TEST(AsyncEngine, ParseErrorsPropagateThroughFutures)
{
    AsyncEngine engine(ithemalCheckpoint());
    const auto texts = corpusTexts(4, 0x77);
    std::vector<std::string> mixed = {texts[0], "# only a comment\n",
                                      texts[1]};
    std::vector<std::future<double>> futures =
        engine.submitAll(mixed);
    // Good requests in the same micro-batch still succeed.
    EXPECT_GT(futures[0].get(), 0.0);
    EXPECT_THROW(futures[1].get(), std::runtime_error);
    EXPECT_GT(futures[2].get(), 0.0);
    // The synchronous wrapper surfaces the same error by throwing.
    EXPECT_THROW(engine.predict("BOGUS_OPCODE %zz\n"),
                 std::runtime_error);
}

TEST(AsyncEngine, WrapperAndAsyncServeIdenticalBits)
{
    const auto texts = corpusTexts(12, 0x88);
    PredictionEngine wrapper(surrogateCheckpoint());
    AsyncEngine direct(surrogateCheckpoint());
    for (const auto &text : texts) {
        const double a = wrapper.predict(text);
        const double b = direct.submit(text).get();
        EXPECT_TRUE(sameBits(a, b));
        EXPECT_TRUE(sameBits(a, wrapper.predictUncached(text)));
    }
}

TEST(AsyncEngine, F32ConcurrentSubmissionIsDeterministic)
{
    // kF32 is accuracy-gated against f64, but across thread counts
    // and interleavings it must still be *identical to itself*.
    const auto texts = corpusTexts(16, 0x99);
    AsyncConfig cfg;
    cfg.precision = nn::Precision::kF32;
    AsyncEngine reference(surrogateCheckpoint(), cfg);
    std::vector<double> expected;
    expected.reserve(texts.size());
    for (const auto &text : texts)
        expected.push_back(reference.predict(text));

    AsyncEngine engine(surrogateCheckpoint(), cfg);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < texts.size(); ++i) {
                const size_t at =
                    (i * 7 + size_t(t) * 3) % texts.size();
                if (!sameBits(engine.submit(texts[at]).get(),
                              expected[at]))
                    ++mismatches;
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(AsyncEngine, ConcurrentSyncCallsAreSafe)
{
    // The synchronous entry points are thread-safe too (v1's
    // "single-caller" restriction is gone): hammer predict and
    // predictAll from several threads.
    const auto texts = corpusTexts(24, 0xaa);
    PredictionEngine reference(ithemalCheckpoint());
    std::vector<double> expected;
    for (const auto &text : texts)
        expected.push_back(reference.predict(text));

    AsyncEngine engine(ithemalCheckpoint());
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            if (t % 2 == 0) {
                const std::vector<double> all =
                    engine.predictAll(texts);
                for (size_t i = 0; i < texts.size(); ++i)
                    if (!sameBits(all[i], expected[i]))
                        ++mismatches;
            } else {
                for (size_t i = 0; i < texts.size(); ++i)
                    if (!sameBits(engine.predict(texts[i]),
                                  expected[i]))
                        ++mismatches;
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(AsyncEngine, PoolShutdownDrainsEveryQueue)
{
    // Dispatcher pool: requests striped over several intake queues
    // must all complete (with the right bits) through an immediate
    // shutdown — the drain covers every per-worker queue, not just
    // one dispatcher's.
    const auto texts = corpusTexts(24, 0xbb);
    AsyncConfig cfg;
    cfg.dispatchers = 4;
    AsyncEngine engine(ithemalCheckpoint(), cfg);
    PredictionEngine reference(ithemalCheckpoint());
    std::vector<std::future<double>> futures;
    futures.reserve(texts.size());
    for (const auto &text : texts)
        futures.push_back(engine.submit(text));
    engine.shutdown();
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(
            sameBits(futures[i].get(), reference.predict(texts[i])));
    EXPECT_THROW(engine.submit(texts[0]), EngineStoppedError);
}

TEST(AsyncEngine, PoolQueueMetricsReconcile)
{
    // Satellite of the traffic-lab PR: with a dispatcher pool the
    // queue_depth gauge mirrors the backlog summed over every
    // per-worker queue (one queue alone would under-report), and
    // stage.queue_wait_ns times from the enqueue on the owning
    // queue — so after a full drain the gauge reads 0 and the wait
    // histogram holds exactly one observation per queued request.
    const auto texts = corpusTexts(32, 0xcc);
    obs::MetricRegistry registry;
    AsyncConfig cfg;
    cfg.dispatchers = 4;
    cfg.registry = &registry;
    cfg.metricPrefix = "poolrec";
    AsyncEngine engine(ithemalCheckpoint(), cfg);
    for (std::future<double> &future : engine.submitAll(texts))
        future.get();
    for (const auto &text : texts) // warm repeats: front-cache hits
        engine.submit(text).get();
    engine.shutdown();

    EXPECT_EQ(registry.gauge("poolrec.queue_depth").value(), 0);
    // Every text missed the front cache exactly once and queued;
    // the warm repeats resolved inline and never waited.
    const auto waits =
        registry.histogram("poolrec.stage.queue_wait_ns").snapshot();
    EXPECT_EQ(waits.count(), engine.stats().textMisses.load());
    EXPECT_EQ(waits.count(), texts.size());
    // Async end-to-end spans cover the same queued population.
    const auto requests =
        registry.histogram("poolrec.request_ns").snapshot();
    EXPECT_EQ(requests.count(), texts.size());
}

TEST(ShardedLruCacheTest, StripeBalanceOnDenseBlockIds)
{
    // Satellite of the traffic-lab PR: interned BlockIds are dense
    // sequential integers, and std::hash is identity for integers on
    // common implementations — without a finalizer, stripe selection
    // would correlate with the per-stripe hash-map bucket reduction.
    // stripeFor applies the full splitmix64 finalizer; audit the mix
    // on the worst-case population (10k sequential ids) and require
    // every stripe within 2x fair share (measured: within 10%,
    // worst stripe ~8.1% under fair).
    ShardedLruCache<uint32_t, double> cache(4096, 8);
    std::vector<size_t> load(size_t(cache.numStripes()), 0);
    constexpr size_t kIds = 10000;
    for (uint32_t id = 0; id < kIds; ++id)
        ++load[cache.stripeIndex(id)];
    const double fair = double(kIds) / double(load.size());
    for (size_t s = 0; s < load.size(); ++s) {
        EXPECT_LT(double(load[s]), 2.0 * fair) << "stripe " << s;
        EXPECT_GT(double(load[s]), 0.5 * fair) << "stripe " << s;
        // The documented measurement in sharded_cache.hh.
        EXPECT_NEAR(double(load[s]), fair, 0.10 * fair)
            << "stripe " << s;
    }
}

TEST(ShardedLruCacheTest, PolicyFactoryDrivesStripes)
{
    // A non-default policy threads through the sharded wrapper: a
    // TinyLFU cache under one-pass scan traffic must reject most
    // inserts (counters prove the policy actually ran per stripe).
    ShardedLruCache<uint32_t, double> cache(
        64, 4, lab::policyFactory("tinylfu"));
    EXPECT_STREQ(cache.policyName(), "tinylfu");
    // Warm a hot set, then scan with the hot traffic still flowing
    // (TinyLFU's sketch ages, so a hot set that stops arriving
    // decays away by design).
    for (int round = 0; round < 8; ++round)
        for (uint32_t id = 0; id < 64; ++id)
            if (!cache.get(id))
                cache.put(id, double(id));
    for (uint32_t id = 10000; id < 12000; ++id) {
        const uint32_t hot = id % 64;
        if (!cache.get(hot))
            cache.put(hot, double(hot));
        cache.get(id);
        cache.put(id, double(id));
    }
    const lab::CacheCounters counters = cache.counters();
    EXPECT_GT(counters.rejections, 1500u);
    // Hot keys survived the scan.
    size_t hot_resident = 0;
    for (uint32_t id = 0; id < 64; ++id)
        if (cache.get(id))
            ++hot_resident;
    EXPECT_GT(hot_resident, 48u);
}

TEST(ShardedLruCacheTest, StripedGetPutAndEviction)
{
    ShardedLruCache<std::string, double> cache(16, 4);
    EXPECT_EQ(cache.numStripes(), 4);
    EXPECT_EQ(cache.capacity(), 16u);
    for (int i = 0; i < 64; ++i)
        cache.put("key" + std::to_string(i), double(i));
    EXPECT_LE(cache.size(), 16u);
    EXPECT_GT(cache.size(), 0u);
    // Whatever survived must read back exactly.
    for (int i = 0; i < 64; ++i) {
        const auto hit = cache.get("key" + std::to_string(i));
        if (hit) {
            EXPECT_EQ(*hit, double(i));
        }
    }
    EXPECT_FALSE(cache.get("never-inserted").has_value());
}

TEST(ShardedLruCacheTest, CapacityReportsConfiguredBudget)
{
    // Regression: capacity() used to return stripes * ceil(cap /
    // stripes) — 12 for a cache configured with 10 over 4 stripes —
    // so sizing reports overstated the budget whenever the capacity
    // didn't divide the stripe count. The configured number and the
    // per-stripe enforcement bound are now reported separately.
    ShardedLruCache<std::string, double> cache(10, 4);
    EXPECT_EQ(cache.capacity(), 10u);
    EXPECT_EQ(cache.enforcedCapacity(), 12u); // 4 * ceil(10/4)
    // Residency never exceeds the enforced bound.
    for (int i = 0; i < 100; ++i)
        cache.put("key" + std::to_string(i), double(i));
    EXPECT_LE(cache.size(), cache.enforcedCapacity());

    // Exact division: the two coincide.
    ShardedLruCache<std::string, double> even(16, 4);
    EXPECT_EQ(even.capacity(), 16u);
    EXPECT_EQ(even.enforcedCapacity(), 16u);

    // One stripe degenerates to a plain LRU: both are exact.
    ShardedLruCache<std::string, double> single(7, 1);
    EXPECT_EQ(single.capacity(), 7u);
    EXPECT_EQ(single.enforcedCapacity(), 7u);
}

TEST(ShardedLruCacheTest, ConcurrentAccessKeepsValuesExact)
{
    ShardedLruCache<std::string, double> cache(256, 8);
    std::atomic<int> corrupt{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            Rng rng{uint64_t(t)};
            for (int i = 0; i < 2000; ++i) {
                const int k = int(rng.uniformInt(0, 127));
                const std::string key =
                    "key" + std::to_string(k);
                if (i % 2 == 0) {
                    cache.put(key, double(k));
                } else if (const auto hit = cache.get(key)) {
                    if (*hit != double(k))
                        ++corrupt;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(corrupt.load(), 0);
}

} // namespace
} // namespace difftune::serve
