/**
 * @file
 * Tests for the synthetic BHive corpus and datasets: generator
 * validity, deduplication, categories, splits and summary stats.
 */

#include <gtest/gtest.h>

#include <set>

#include "bhive/dataset.hh"
#include "bhive/generator.hh"
#include "isa/parse.hh"

namespace difftune::bhive
{
namespace
{

TEST(Generator, BlocksAreWellFormed)
{
    Rng rng(1);
    for (int app = 0; app < numApps; ++app) {
        const AppProfile &profile = appProfile(App(app));
        for (int i = 0; i < 50; ++i) {
            isa::BasicBlock block = generateBlock(rng, profile);
            ASSERT_GE(block.size(), 1u);
            ASSERT_LE(block.size(), 64u);
            for (const auto &inst : block.insts) {
                const auto &op = inst.info();
                EXPECT_EQ(inst.slots.size(), op.numRegOps());
                if (op.mem != isa::MemMode::None) {
                    EXPECT_NE(inst.mem.base, isa::invalidReg);
                }
                for (isa::RegId reg : inst.slots) {
                    if (op.isVector)
                        EXPECT_TRUE(isa::isVec(reg));
                    else
                        EXPECT_TRUE(isa::isGpr(reg));
                }
            }
        }
    }
}

class ProfileTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ProfileTest, RoundTripsThroughPrinter)
{
    Rng rng(GetParam() * 7 + 1);
    const AppProfile &profile = appProfile(App(GetParam()));
    for (int i = 0; i < 20; ++i) {
        isa::BasicBlock block = generateBlock(rng, profile);
        isa::BasicBlock reparsed = isa::parseBlock(isa::toString(block));
        EXPECT_EQ(reparsed.hash(), block.hash());
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ProfileTest,
                         ::testing::Range(0, numApps),
                         [](const auto &info) {
                             std::string name =
                                 appName(App(info.param));
                             for (char &c : name)
                                 if (!isalnum(c))
                                     c = '_';
                             return name;
                         });

TEST(Generator, VectorAppsEmitVectorCode)
{
    Rng rng(5);
    int vector_insts = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        auto block = generateBlock(rng, appProfile(App::OpenBLAS));
        for (const auto &inst : block.insts) {
            total += 1;
            vector_insts += inst.info().isVector;
        }
    }
    EXPECT_GT(double(vector_insts) / total, 0.4);
}

TEST(Generator, ScalarAppsRarelyEmitVectorCode)
{
    Rng rng(6);
    int vector_insts = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        auto block = generateBlock(rng, appProfile(App::Redis));
        for (const auto &inst : block.insts) {
            total += 1;
            vector_insts += inst.info().isVector;
        }
    }
    EXPECT_EQ(vector_insts, 0);
    EXPECT_GT(total, 0);
}

TEST(Categories, HandClassifiedBlocks)
{
    using isa::parseBlock;
    EXPECT_EQ(classifyBlock(parseBlock("ADD32rr %ebx, %ecx\n")),
              Category::Scalar);
    EXPECT_EQ(classifyBlock(parseBlock(
                  "VADDPS128rr %xmm1, %xmm2, %xmm3\n")),
              Category::Vec);
    EXPECT_EQ(classifyBlock(parseBlock(
                  "ADD32rr %ebx, %ecx\n"
                  "VADDPS128rr %xmm1, %xmm2, %xmm3\n")),
              Category::ScalarVec);
    EXPECT_EQ(classifyBlock(parseBlock("MOV64rm 0(%rsi), %rbx\n")),
              Category::Ld);
    EXPECT_EQ(classifyBlock(parseBlock("MOV64mr %rbx, 0(%rsi)\n")),
              Category::St);
    EXPECT_EQ(classifyBlock(parseBlock(
                  "MOV64rm 0(%rsi), %rbx\nMOV64mr %rbx, 8(%rsi)\n")),
              Category::LdSt);
    EXPECT_EQ(classifyBlock(parseBlock("ADD32mr 0(%rsi), %ebx\n")),
              Category::LdSt);
}

TEST(Corpus, GeneratesRequestedSize)
{
    Corpus corpus = Corpus::generate(500, 42);
    EXPECT_GE(corpus.size(), 450u);
    EXPECT_LE(corpus.size(), 500u);
}

TEST(Corpus, Deterministic)
{
    Corpus a = Corpus::generate(200, 7);
    Corpus b = Corpus::generate(200, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].block.hash(), b[i].block.hash());
}

TEST(Corpus, BlocksAreUnique)
{
    Corpus corpus = Corpus::generate(800, 11);
    std::set<uint64_t> hashes;
    for (const auto &info : corpus.blocks())
        hashes.insert(info.block.hash());
    EXPECT_EQ(hashes.size(), corpus.size());
}

TEST(Corpus, EveryBlockHasAppAndCategory)
{
    Corpus corpus = Corpus::generate(400, 13);
    for (const auto &info : corpus.blocks()) {
        EXPECT_NE(info.appMask, 0);
        EXPECT_LT(int(info.category), numCategories);
        EXPECT_EQ(info.category, classifyBlock(info.block));
    }
}

TEST(Corpus, ClangDominatesShares)
{
    Corpus corpus = Corpus::generate(2000, 17);
    size_t clang = 0;
    for (const auto &info : corpus.blocks())
        clang += info.fromApp(App::Clang);
    EXPECT_GT(clang, corpus.size() / 3);
}

TEST(Dataset, SplitProportionsAndDisjointness)
{
    Corpus corpus = Corpus::generate(600, 3);
    Dataset dataset(corpus, hw::Uarch::Haswell);
    const size_t n = corpus.size();
    EXPECT_NEAR(double(dataset.train().size()), 0.8 * n, 2.0);
    EXPECT_NEAR(double(dataset.valid().size()), 0.1 * n, 2.0);
    EXPECT_EQ(dataset.train().size() + dataset.valid().size() +
                  dataset.test().size(),
              n);

    std::set<uint32_t> seen;
    for (const auto &entry : dataset.train())
        EXPECT_TRUE(seen.insert(entry.blockIdx).second);
    for (const auto &entry : dataset.valid())
        EXPECT_TRUE(seen.insert(entry.blockIdx).second);
    for (const auto &entry : dataset.test())
        EXPECT_TRUE(seen.insert(entry.blockIdx).second);
}

TEST(Dataset, SameSplitAcrossUarches)
{
    Corpus corpus = Corpus::generate(300, 5);
    Dataset hsw(corpus, hw::Uarch::Haswell);
    Dataset zen(corpus, hw::Uarch::Zen2);
    ASSERT_EQ(hsw.test().size(), zen.test().size());
    for (size_t i = 0; i < hsw.test().size(); ++i)
        EXPECT_EQ(hsw.test()[i].blockIdx, zen.test()[i].blockIdx);
}

TEST(Dataset, TimingsMatchRefMachine)
{
    Corpus corpus = Corpus::generate(100, 9);
    Dataset dataset(corpus, hw::Uarch::Skylake);
    hw::RefMachine machine(hw::Uarch::Skylake);
    for (const auto &entry : dataset.test())
        EXPECT_DOUBLE_EQ(entry.timing,
                         machine.measure(dataset.block(entry)));
}

TEST(Dataset, TimingsPositive)
{
    Corpus corpus = Corpus::generate(300, 21);
    Dataset dataset(corpus, hw::Uarch::IvyBridge);
    for (const auto &entry : dataset.train())
        EXPECT_GT(entry.timing, 0.0);
}

TEST(Summary, TableIIIShape)
{
    Corpus corpus = Corpus::generate(1000, 23);
    Dataset hsw(corpus, hw::Uarch::Haswell);
    Dataset zen(corpus, hw::Uarch::Zen2);
    DatasetSummary summary = summarize(corpus, {&hsw, &zen});

    EXPECT_EQ(summary.trainBlocks, hsw.train().size());
    EXPECT_GE(summary.minLength, 1u);
    EXPECT_LE(summary.medianLength, summary.meanLength + 2);
    // BHive-like skew: median ~3, mean ~5.
    EXPECT_NEAR(summary.medianLength, 3.0, 1.5);
    EXPECT_NEAR(summary.meanLength, 5.0, 2.0);
    EXPECT_GE(summary.trainOpcodes, summary.testOpcodes);
    EXPECT_LE(summary.totalOpcodes, isa::theIsa().numOpcodes());
    ASSERT_EQ(summary.medianTimings.size(), 2u);
    EXPECT_GT(summary.medianTimings[0].second, 10.0);
}

} // namespace
} // namespace difftune::bhive
