/**
 * @file
 * Tests for the OpenTuner-style baseline: budget accounting, search-
 * box constraints, bandit behaviour, and improvement over its
 * starting point on a small problem.
 */

#include <gtest/gtest.h>

#include <set>

#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "tuner/opentuner.hh"

namespace difftune::tuner
{
namespace
{

const bhive::Corpus &
corpus()
{
    static const bhive::Corpus c = bhive::Corpus::generate(200, 31);
    return c;
}

const bhive::Dataset &
dataset()
{
    static const bhive::Dataset d(corpus(), hw::Uarch::Haswell);
    return d;
}

TunerConfig
smallConfig(long budget)
{
    TunerConfig cfg;
    cfg.evalBudget = budget;
    cfg.blocksPerEval = 32;
    cfg.seed = 4;
    return cfg;
}

TEST(OpenTuner, RespectsEvalBudget)
{
    mca::XMca sim;
    OpenTuner tuner(sim, dataset(), hw::defaultTable(hw::Uarch::Haswell),
                    smallConfig(2000));
    TunerResult result = tuner.run();
    EXPECT_LE(result.evalsUsed, 2000);
    EXPECT_GT(result.evalsUsed, 0);
    EXPECT_GT(result.iterations, 0);
}

TEST(OpenTuner, ImprovesOverEarlyBest)
{
    mca::XMca sim;
    auto base = hw::defaultTable(hw::Uarch::Haswell);
    OpenTuner small_run(sim, dataset(), base, smallConfig(1500));
    OpenTuner large_run(sim, dataset(), base, smallConfig(15000));
    const double small_err = small_run.run().bestTrainError;
    const double large_err = large_run.run().bestTrainError;
    EXPECT_LE(large_err, small_err + 0.05);
}

TEST(OpenTuner, ResultRespectsSearchBox)
{
    mca::XMca sim;
    OpenTuner tuner(sim, dataset(), hw::defaultTable(hw::Uarch::Haswell),
                    smallConfig(6000));
    TunerResult result = tuner.run();
    EXPECT_GE(result.best.dispatchWidth, 1);
    EXPECT_LE(result.best.dispatchWidth, 10);
    EXPECT_GE(result.best.reorderBufferSize, 50);
    EXPECT_LE(result.best.reorderBufferSize, 250);
    for (const auto &inst : result.best.perOpcode) {
        EXPECT_LE(inst.writeLatency, 5);
        EXPECT_LE(inst.numMicroOps, 5);
        for (double pc : inst.portMap)
            EXPECT_LE(pc, 5);
    }
}

TEST(OpenTuner, BanditTriesEveryTechnique)
{
    mca::XMca sim;
    OpenTuner tuner(sim, dataset(), hw::defaultTable(hw::Uarch::Haswell),
                    smallConfig(8000));
    TunerResult result = tuner.run();
    for (size_t t = 0; t < result.picks.size(); ++t)
        EXPECT_GT(result.picks[t], 0) << techniqueName(Technique(t));
}

TEST(OpenTuner, MaskedSearchKeepsBase)
{
    mca::XMca sim;
    auto base = hw::defaultTable(hw::Uarch::Haswell);
    TunerConfig cfg = smallConfig(3000);
    cfg.dist = params::SamplingDist::writeLatencyOnly();
    OpenTuner tuner(sim, dataset(), base, cfg);
    TunerResult result = tuner.run();
    EXPECT_EQ(result.best.dispatchWidth, base.dispatchWidth);
    for (size_t op = 0; op < base.numOpcodes(); ++op)
        EXPECT_EQ(result.best.perOpcode[op].portMap,
                  base.perOpcode[op].portMap);
}

TEST(OpenTuner, Deterministic)
{
    mca::XMca sim;
    auto base = hw::defaultTable(hw::Uarch::Haswell);
    OpenTuner a(sim, dataset(), base, smallConfig(2000));
    OpenTuner b(sim, dataset(), base, smallConfig(2000));
    EXPECT_EQ(a.run().bestTrainError, b.run().bestTrainError);
}

TEST(Technique, NamesAreDistinct)
{
    std::set<std::string> names;
    for (int t = 0; t < int(Technique::NumTechniques); ++t)
        names.insert(techniqueName(Technique(t)));
    EXPECT_EQ(names.size(), size_t(Technique::NumTechniques));
}

} // namespace
} // namespace difftune::tuner
