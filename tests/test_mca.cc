/**
 * @file
 * Tests for the XMca simulator: stage semantics (dispatch bandwidth,
 * reorder-buffer stalls, dependence latencies, ReadAdvance clipping,
 * port occupancy, store ordering) plus property tests (monotonicity,
 * determinism, trace invariants).
 */

#include <gtest/gtest.h>

#include "isa/parse.hh"
#include "mca/xmca.hh"

namespace difftune::mca
{
namespace
{

using isa::parseBlock;
using params::ParamTable;

/** A neutral table: 1 uop, 1-cycle latency, no ports, dw 4, rob 192. */
ParamTable
neutralTable()
{
    ParamTable table(isa::theIsa().numOpcodes());
    for (auto &inst : table.perOpcode) {
        inst.numMicroOps = 1;
        inst.writeLatency = 1;
    }
    table.dispatchWidth = 4;
    table.reorderBufferSize = 192;
    return table;
}

isa::OpcodeId
op(const char *name)
{
    auto id = isa::theIsa().opcodeByName(name);
    EXPECT_NE(id, isa::invalidOpcode);
    return id;
}

TEST(XMca, EmptyBlockIsZero)
{
    XMca sim;
    EXPECT_EQ(sim.timing(isa::BasicBlock{}, neutralTable()), 0.0);
}

TEST(XMca, DispatchBound)
{
    // Independent single-uop instructions: bounded by DispatchWidth.
    auto block = parseBlock("NOP\nNOP\nNOP\nNOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].writeLatency = 0;
    XMca sim;
    table.dispatchWidth = 4;
    EXPECT_NEAR(sim.timing(block, table), 1.0, 0.05);
    table.dispatchWidth = 2;
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.05);
    table.dispatchWidth = 1;
    EXPECT_NEAR(sim.timing(block, table), 4.0, 0.05);
}

TEST(XMca, UopsConsumeDispatchBandwidth)
{
    auto block = parseBlock("NOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].writeLatency = 0;
    table.perOpcode[op("NOP")].numMicroOps = 8;
    table.dispatchWidth = 4;
    XMca sim;
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.05);
}

TEST(XMca, DependenceChainLatency)
{
    // add %ebx, %ecx self-chains through %ebx at WriteLatency.
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    auto table = neutralTable();
    XMca sim;
    for (int latency : {1, 2, 5, 9}) {
        table.perOpcode[op("ADD32rr")].writeLatency = latency;
        EXPECT_NEAR(sim.timing(block, table), double(latency), 0.1)
            << "latency " << latency;
    }
}

TEST(XMca, ReadAdvanceAcceleratesChains)
{
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    auto table = neutralTable();
    table.perOpcode[op("ADD32rr")].writeLatency = 5;
    table.perOpcode[op("ADD32rr")].readAdvance[0] = 3;
    XMca sim;
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.1);
}

TEST(XMca, ReadAdvanceClipsAtZero)
{
    // Footnote 7: latency - advance clips at zero, never negative.
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    auto table = neutralTable();
    table.perOpcode[op("ADD32rr")].writeLatency = 2;
    table.perOpcode[op("ADD32rr")].readAdvance[0] = 50;
    XMca sim;
    // Chain latency 0: bounded by dispatch only (1 uop / 4 wide).
    EXPECT_LE(sim.timing(block, table), 0.5);
}

TEST(XMca, PortOccupancySerializes)
{
    auto block = parseBlock("NOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].writeLatency = 0;
    table.perOpcode[op("NOP")].portMap[3] = 2;
    XMca sim;
    // One instruction every 2 cycles on port 3.
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.05);
}

TEST(XMca, JointPortsMustBeFreeTogether)
{
    auto block = parseBlock("NOP\nNOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].writeLatency = 0;
    table.perOpcode[op("NOP")].portMap[0] = 1;
    table.perOpcode[op("NOP")].portMap[1] = 1;
    XMca sim;
    // Both NOPs need ports 0+1 together: 1 per cycle.
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.1);
}

TEST(XMca, RobStallsDispatch)
{
    // Independent long-latency loads: with a roomy ROB they pipeline
    // at the dispatch rate; with a tiny ROB only a few can be in
    // flight, so dispatch throttles to the retire rate.
    auto block = parseBlock("MOV64rm 0(%rsi), %rdi\n");
    auto table = neutralTable();
    table.perOpcode[op("MOV64rm")].writeLatency = 20;
    XMca sim;
    table.reorderBufferSize = 200;
    const double roomy = sim.timing(block, table);
    EXPECT_NEAR(roomy, 0.25, 0.3); // dispatch-bound
    table.reorderBufferSize = 4;
    const double cramped = sim.timing(block, table);
    EXPECT_GT(cramped, roomy * 3.0); // ~20/4 cycles per load
}

TEST(XMca, WideInstructionFitsEmptyRob)
{
    auto block = parseBlock("NOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].numMicroOps = 10;
    table.perOpcode[op("NOP")].writeLatency = 0;
    table.reorderBufferSize = 4; // smaller than the instruction
    XMca sim;
    EXPECT_GT(sim.timing(block, table), 0.0); // must not hang/panic
}

TEST(XMca, StoresIssueInOrder)
{
    auto block = parseBlock(
        "MOV64mr %rbx, 0(%rsi)\n"
        "MOV64mr %rcx, 8(%rsi)\n");
    auto table = neutralTable();
    // Make the first store's data late via a long producer chain.
    auto block2 = parseBlock(
        "IMUL64rr %rbx, %rbx\n"
        "MOV64mr %rbx, 0(%rsi)\n"
        "MOV64mr %rcx, 8(%rsi)\n");
    table.perOpcode[op("IMUL64rr")].writeLatency = 10;
    XMca sim;
    Trace trace;
    sim.timingWithTrace(block2, table, trace);
    // Within each iteration the second store never issues before the
    // first (LSUnit store->store ordering).
    for (size_t i = 0; i + 2 < trace.entries.size(); i += 3)
        EXPECT_LE(trace.entries[i + 1].issued,
                  trace.entries[i + 2].issued);
    (void)block;
}

TEST(XMca, TraceInvariants)
{
    auto block = parseBlock(
        "ADD32rr %ebx, %ecx\n"
        "MOV64rm 8(%rsi), %rdi\n"
        "PUSH64r %rbx\n");
    auto table = neutralTable();
    XMca sim(25);
    Trace trace;
    const double timing = sim.timingWithTrace(block, table, trace);
    EXPECT_EQ(trace.entries.size(), block.size() * 25);
    EXPECT_NEAR(timing, double(trace.totalCycles) / 25.0, 1e-9);
    int64_t prev_dispatch = 0, prev_retire = 0;
    for (const auto &entry : trace.entries) {
        EXPECT_LE(entry.dispatched, entry.issued);
        EXPECT_LE(entry.issued, entry.retired);
        // Program-order dispatch and retire are monotone.
        EXPECT_GE(entry.dispatched, prev_dispatch);
        EXPECT_GE(entry.retired, prev_retire);
        prev_dispatch = entry.dispatched;
        prev_retire = entry.retired;
    }
}

TEST(XMca, Deterministic)
{
    auto block = parseBlock(
        "ADD32rr %ebx, %ecx\nSHR32ri $3, %ebx\nMOV64rm 8(%rsi), %rdi\n");
    auto table = neutralTable();
    XMca sim;
    EXPECT_EQ(sim.timing(block, table), sim.timing(block, table));
}

TEST(XMca, TimingScalesWithIterations)
{
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    auto table = neutralTable();
    XMca sim100(100), sim10(10);
    // Steady-state: per-iteration timing roughly independent of the
    // iteration count.
    EXPECT_NEAR(sim100.timing(block, table), sim10.timing(block, table),
                0.5);
}

// ------------------------------------------------------ property sweeps

class LatencyMonotoneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LatencyMonotoneTest, TimingNonDecreasingInWriteLatency)
{
    auto block = parseBlock(
        "ADD32rr %ebx, %ecx\nSUB32rr %ecx, %ebx\nIMUL32rr %ebx, %ecx\n");
    auto table = neutralTable();
    XMca sim;
    const int latency = GetParam();
    table.perOpcode[op("ADD32rr")].writeLatency = latency;
    const double t1 = sim.timing(block, table);
    table.perOpcode[op("ADD32rr")].writeLatency = latency + 1;
    const double t2 = sim.timing(block, table);
    EXPECT_LE(t1, t2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencyMonotoneTest,
                         ::testing::Values(0, 1, 2, 4, 8, 16));

class DispatchMonotoneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DispatchMonotoneTest, TimingNonIncreasingInDispatchWidth)
{
    auto block = parseBlock(
        "NOP\nNOP\nADD32rr %ebx, %ecx\nMOV32ri $7, %edi\nNOP\n");
    auto table = neutralTable();
    XMca sim;
    table.dispatchWidth = GetParam();
    const double narrow = sim.timing(block, table);
    table.dispatchWidth = GetParam() + 1;
    const double wide = sim.timing(block, table);
    EXPECT_GE(narrow, wide - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, DispatchMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(XMca, Figure2Shape)
{
    // The Figure 2 block: shrq $5, 16(%rsp). With the default-like
    // 4 uops, timing should fall as 4/dw and plateau at the store
    // port bound of 1.
    auto block = parseBlock("SHR64mi $5, 0(%rsp)\n");
    auto table = neutralTable();
    auto id = op("SHR64mi");
    table.perOpcode[id].numMicroOps = 4;
    table.perOpcode[id].writeLatency = 2;
    table.perOpcode[id].portMap[4] = 1;
    XMca sim;
    std::vector<double> timings;
    for (int dw = 1; dw <= 10; ++dw) {
        table.dispatchWidth = dw;
        timings.push_back(sim.timing(block, table));
    }
    EXPECT_NEAR(timings[0], 4.0, 0.1); // dw=1
    EXPECT_NEAR(timings[1], 2.0, 0.1); // dw=2
    EXPECT_NEAR(timings[3], 1.0, 0.1); // dw=4
    EXPECT_NEAR(timings[9], 1.0, 0.1); // plateau
}

} // namespace
} // namespace difftune::mca
