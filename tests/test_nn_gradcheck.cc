/**
 * @file
 * The gradient-check net under the fused/arena autograd rewrite.
 *
 * Every op — primitive and fused — is checked against central finite
 * differences (rel-err < 1e-6) over randomized shapes, explicitly
 * including rows/cols = 1 edge cases. The fused ops are additionally
 * asserted bit-identical (values and accumulated parameter
 * gradients) to the primitive compositions they replace, and the
 * frozen reference kernels (nn/ref_kernels.cc) bit-identical to the
 * optimized ones. A final set of tests locks the arena lifecycle:
 * clear() + same-shape rebuild reuses storage without growth and
 * reproduces identical bits.
 *
 * To add an op: give it a gradcheck here over randomized shapes
 * (including size-1 edges) and, if it fuses a primitive
 * composition, a bit-exactness test against that composition.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "nn/modules.hh"
#include "nn/optim.hh"

namespace difftune::nn
{
namespace
{

uint64_t
bits(double v)
{
    uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/**
 * Central-difference gradient check of a scalar-valued graph built
 * by @p forward over every entry of every tensor in @p params.
 * Asserts relative error < 1e-6 (against max(1, |grad|)).
 */
void
gradCheck(ParamSet &params,
          const std::function<Var(Graph &, Ctx &)> &forward,
          double eps = 1e-5, double tol = 1e-6)
{
    Grads grads(params);
    Graph graph;
    Ctx ctx{graph, params, &grads};
    Var loss = forward(graph, ctx);
    graph.backward(loss);

    for (size_t p = 0; p < params.count(); ++p) {
        Tensor &tensor = params[int(p)];
        for (size_t i = 0; i < tensor.data.size(); ++i) {
            const double saved = tensor.data[i];
            tensor.data[i] = saved + eps;
            Graph gp;
            Ctx cp{gp, params, nullptr};
            const double up = gp.scalarValue(forward(gp, cp));
            tensor.data[i] = saved - eps;
            Graph gm;
            Ctx cm{gm, params, nullptr};
            const double down = gm.scalarValue(forward(gm, cm));
            tensor.data[i] = saved;
            const double numeric = (up - down) / (2 * eps);
            const double analytic = grads[int(p)].data[i];
            EXPECT_NEAR(analytic, numeric,
                        tol * std::max(1.0, std::fabs(numeric)))
                << "param " << p << " index " << i;
        }
    }
}

/** Random shapes to sweep: deliberately includes every 1-edge. */
struct Shape
{
    int rows;
    int cols;
};

const Shape kShapes[] = {{1, 1}, {1, 3}, {4, 1}, {3, 5}, {5, 2}};

/** Reduce a column vector to a scalar with a fixed random probe. */
Var
probeLoss(Graph &g, Var v, Rng &rng)
{
    const TensorView view = g.value(v);
    Tensor probe(view.rows, 1);
    probe.uniformInit(rng, 1.0);
    return g.lossMse(g.dot(v, g.input(probe)), 0.3);
}

/** Reduce an (r x c) matrix node to a scalar via matmul probes. */
Var
probeLossMatrix(Graph &g, Var v, Rng &rng)
{
    const TensorView view = g.value(v);
    Tensor right(view.cols, 1);
    right.uniformInit(rng, 1.0);
    return probeLoss(g, g.matmul(v, g.input(right)), rng);
}

// ------------------------------------------------- primitive ops

TEST(GradCheckRandom, MatmulAllShapes)
{
    Rng rng(101);
    for (const Shape m : kShapes) {
        for (int n : {1, 3}) {
            ParamSet params;
            int a = params.add(m.rows, m.cols);
            int b = params.add(m.cols, n);
            params[a].uniformInit(rng, 0.8);
            params[b].uniformInit(rng, 0.8);
            gradCheck(params, [&](Graph &g, Ctx &ctx) {
                Var prod = g.matmul(g.param(ctx.params, a, ctx.sink),
                                    g.param(ctx.params, b, ctx.sink));
                Rng probe_rng(7);
                return probeLossMatrix(g, prod, probe_rng);
            });
        }
    }
}

TEST(GradCheckRandom, ElementwiseOps)
{
    using Builder = std::function<Var(Graph &, Var)>;
    const std::pair<const char *, Builder> ops[] = {
        {"sigmoid", [](Graph &g, Var x) { return g.sigmoid(x); }},
        {"tanh", [](Graph &g, Var x) { return g.tanh(x); }},
        {"relu", [](Graph &g, Var x) { return g.relu(x); }},
        {"abs", [](Graph &g, Var x) { return g.abs(x); }},
        {"exp", [](Graph &g, Var x) { return g.exp(x); }},
        {"scale", [](Graph &g, Var x) { return g.scale(x, -1.7); }},
    };
    Rng rng(102);
    for (const auto &[name, op] : ops) {
        for (const Shape s : kShapes) {
            ParamSet params;
            int w = params.add(s.rows, s.cols);
            params[w].uniformInit(rng, 0.9);
            gradCheck(params, [&](Graph &g, Ctx &ctx) {
                Var y = op(g, g.param(ctx.params, w, ctx.sink));
                Rng probe_rng(11);
                return probeLossMatrix(g, y, probe_rng);
            });
        }
    }
}

TEST(GradCheckRandom, BinaryOpsAndScaleByVec)
{
    Rng rng(103);
    for (const Shape s : kShapes) {
        ParamSet params;
        int a = params.add(s.rows, s.cols);
        int b = params.add(s.rows, s.cols);
        params[a].uniformInit(rng, 1.0);
        params[b].uniformInit(rng, 1.0);
        std::vector<double> factors(size_t(s.rows) * s.cols);
        for (double &f : factors)
            f = rng.uniformReal(-2.0, 2.0);
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            Var va = g.param(ctx.params, a, ctx.sink);
            Var vb = g.param(ctx.params, b, ctx.sink);
            Var y = g.mul(g.add(va, vb), g.sub(va, vb));
            Var z = g.scaleByVec(y, factors);
            Rng probe_rng(13);
            return probeLossMatrix(g, z, probe_rng);
        });
    }
}

TEST(GradCheckRandom, SliceConcatParamRow)
{
    Rng rng(104);
    for (int rows : {1, 2, 6}) {
        ParamSet params;
        int table = params.add(rows + 2, 3);
        int vec = params.add(rows, 1);
        params[table].uniformInit(rng, 1.0);
        params[vec].uniformInit(rng, 1.0);
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            Var row = g.paramRow(ctx.params, table, rows / 2,
                                 ctx.sink);
            Var v = g.param(ctx.params, vec, ctx.sink);
            Var cat = g.concat({g.slice(row, 1, 1), v,
                                g.slice(row, 0, 2)});
            Rng probe_rng(17);
            return probeLoss(g, g.tanh(cat), probe_rng);
        });
    }
}

TEST(GradCheckRandom, Losses)
{
    Rng rng(105);
    for (double target : {0.0, 0.4, 2.5}) {
        ParamSet params;
        int w = params.add(1, 1);
        params[w].data[0] = rng.uniformReal(0.1, 2.0);
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            return g.lossMape(g.param(ctx.params, w, ctx.sink),
                              target);
        });
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            return g.lossMae(g.param(ctx.params, w, ctx.sink),
                             target);
        });
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            return g.lossMse(g.param(ctx.params, w, ctx.sink),
                             target);
        });
    }
}

// ----------------------------------------------------- fused ops

TEST(GradCheckFused, LinearAllActivations)
{
    Rng rng(106);
    for (const Act act :
         {Act::None, Act::Sigmoid, Act::Tanh, Act::Relu}) {
        for (const Shape s : kShapes) {
            const int out = s.rows, in = s.cols;
            ParamSet params;
            int w = params.add(out, in);
            int b = params.add(out, 1);
            int x = params.add(in, 1);
            params[w].uniformInit(rng, 0.8);
            params[b].uniformInit(rng, 0.8);
            params[x].uniformInit(rng, 0.8);
            gradCheck(params, [&](Graph &g, Ctx &ctx) {
                Var y = g.linear(g.param(ctx.params, w, ctx.sink),
                                 g.param(ctx.params, x, ctx.sink),
                                 g.param(ctx.params, b, ctx.sink),
                                 act);
                Rng probe_rng(19);
                return probeLoss(g, y, probe_rng);
            });
        }
    }
}

TEST(GradCheckFused, LstmStepRandomShapes)
{
    Rng rng(107);
    for (const auto &[hidden, in] :
         {std::pair{1, 1}, {1, 3}, {3, 1}, {4, 5}}) {
        ParamSet params;
        int wx = params.add(4 * hidden, in);
        int wh = params.add(4 * hidden, hidden);
        int b = params.add(4 * hidden, 1);
        int x = params.add(in, 1);
        int h0 = params.add(hidden, 1);
        int c0 = params.add(hidden, 1);
        for (int p = 0; p < 6; ++p)
            params[p].uniformInit(rng, 0.7);
        gradCheck(
            params,
            [&](Graph &g, Ctx &ctx) {
                Var vx = g.param(ctx.params, x, ctx.sink);
                Graph::LstmState s0{
                    g.param(ctx.params, h0, ctx.sink),
                    g.param(ctx.params, c0, ctx.sink)};
                // Two chained steps: the second consumes the first's
                // h/c slices, exercising grad flow through the
                // packed state.
                Graph::LstmState s1 = g.lstmStep(
                    g.param(ctx.params, wx, ctx.sink),
                    g.param(ctx.params, wh, ctx.sink),
                    g.param(ctx.params, b, ctx.sink), vx, s0.h,
                    s0.c);
                Graph::LstmState s2 = g.lstmStep(
                    g.param(ctx.params, wx, ctx.sink),
                    g.param(ctx.params, wh, ctx.sink),
                    g.param(ctx.params, b, ctx.sink), vx, s1.h,
                    s1.c);
                Rng probe_rng(23);
                return probeLoss(g, g.concat({s2.h, s2.c}),
                                 probe_rng);
            },
            1e-5, 1e-5);
    }
}

TEST(GradCheckFused, DotIncludingSizeOne)
{
    Rng rng(108);
    for (int n : {1, 2, 7}) {
        ParamSet params;
        int a = params.add(n, 1);
        int b = params.add(n, 1);
        params[a].uniformInit(rng, 1.0);
        params[b].uniformInit(rng, 1.0);
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            return g.lossMse(
                g.dot(g.param(ctx.params, a, ctx.sink),
                      g.param(ctx.params, b, ctx.sink)),
                0.2);
        });
    }
}

TEST(GradCheckFused, ScaledSoftClamp)
{
    Rng rng(109);
    for (int n : {1, 3, 8}) {
        ParamSet params;
        int a = params.add(n, 1);
        params[a].uniformInit(rng, 2.0);
        std::vector<double> scales(static_cast<size_t>(n), 0.0);
        for (double &s : scales)
            s = rng.uniformReal(0.2, 1.5);
        gradCheck(params, [&](Graph &g, Ctx &ctx) {
            Var y = g.scaledSoftClamp(
                g.param(ctx.params, a, ctx.sink), scales, 1.25);
            Rng probe_rng(29);
            return probeLoss(g, y, probe_rng);
        });
    }
}

// ----------------------------------- fused == unfused, bit-exact

/**
 * Build @p body twice — fused and unfused — with fresh Grads each,
 * backward from the same loss construction, and assert the loss
 * value and every accumulated gradient are bit-identical.
 */
void
checkFusedUnfusedBits(
    ParamSet &params,
    const std::function<Var(Graph &, Ctx &)> &body)
{
    double loss_val[2];
    std::vector<std::vector<double>> grad_bits[2];
    for (int pass = 0; pass < 2; ++pass) {
        Grads grads(params);
        Graph g;
        Ctx ctx{g, params, &grads, /*fuse=*/pass == 0};
        Var loss = body(g, ctx);
        g.backward(loss);
        loss_val[pass] = g.scalarValue(loss);
        for (size_t p = 0; p < grads.count(); ++p)
            grad_bits[pass].push_back(grads[int(p)].data);
    }
    EXPECT_EQ(bits(loss_val[0]), bits(loss_val[1]));
    ASSERT_EQ(grad_bits[0].size(), grad_bits[1].size());
    for (size_t p = 0; p < grad_bits[0].size(); ++p) {
        ASSERT_EQ(grad_bits[0][p].size(), grad_bits[1][p].size());
        for (size_t i = 0; i < grad_bits[0][p].size(); ++i)
            EXPECT_EQ(bits(grad_bits[0][p][i]),
                      bits(grad_bits[1][p][i]))
                << "param " << p << " index " << i;
    }
}

TEST(FusedEquivalence, LinearModule)
{
    Rng rng(110);
    ParamSet params;
    Linear layer(params, 5, 3, rng);
    checkFusedUnfusedBits(params, [&](Graph &g, Ctx &ctx) {
        Tensor xv(5, 1);
        Rng data_rng(31);
        xv.uniformInit(data_rng, 1.0);
        Var y = layer.forward(ctx, g.input(xv));
        Rng probe_rng(37);
        return probeLoss(g, y, probe_rng);
    });
}

TEST(FusedEquivalence, LstmStackSequence)
{
    Rng rng(111);
    ParamSet params;
    LstmStack stack(params, 3, 4, 2, rng);
    checkFusedUnfusedBits(params, [&](Graph &g, Ctx &ctx) {
        std::vector<Var> sequence;
        Rng data_rng(41);
        for (int t = 0; t < 4; ++t) {
            Tensor xv(3, 1);
            xv.uniformInit(data_rng, 1.0);
            sequence.push_back(g.input(xv));
        }
        Var h = stack.runSequence(ctx, sequence);
        Rng probe_rng(43);
        return probeLoss(g, h, probe_rng);
    });
}

TEST(FusedEquivalence, ScaledSoftClampVsPrimitiveChain)
{
    Rng rng(112);
    ParamSet params;
    int a = params.add(6, 1);
    params[a].uniformInit(rng, 2.0);
    std::vector<double> scales = {0.2, 0.5, 1.0, 1.5, 0.8, 0.05};
    constexpr double cap = 1.25;

    double vals[2][6];
    std::vector<double> grads_out[2];
    for (int pass = 0; pass < 2; ++pass) {
        Grads grads(params);
        Graph g;
        Var x = g.param(params, a, &grads);
        Var y;
        if (pass == 0) {
            y = g.scaledSoftClamp(x, scales, cap);
        } else {
            y = g.scale(
                g.tanh(g.scale(g.scaleByVec(g.abs(x), scales),
                               1.0 / cap)),
                cap);
        }
        for (int i = 0; i < 6; ++i)
            vals[pass][i] = g.value(y).data[i];
        Rng probe_rng(47);
        g.backward(probeLoss(g, y, probe_rng));
        grads_out[pass] = grads[a].data;
    }
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(bits(vals[0][i]), bits(vals[1][i])) << i;
        EXPECT_EQ(bits(grads_out[0][i]), bits(grads_out[1][i])) << i;
    }
}

TEST(FusedEquivalence, ReferenceKernelsMatchOptimized)
{
    Rng rng(113);
    ParamSet params;
    int w = params.add(7, 5);
    int x = params.add(5, 1);
    params[w].uniformInit(rng, 1.0);
    params[x].uniformInit(rng, 1.0);

    double vals[2][7];
    std::vector<double> wg[2], xg[2];
    for (int pass = 0; pass < 2; ++pass) {
        Grads grads(params);
        Graph g;
        g.setReferenceKernels(pass == 1);
        Var y = g.matmul(g.param(params, w, &grads),
                         g.param(params, x, &grads));
        for (int i = 0; i < 7; ++i)
            vals[pass][i] = g.value(y).data[i];
        Rng probe_rng(53);
        g.backward(probeLoss(g, y, probe_rng));
        wg[pass] = grads[w].data;
        xg[pass] = grads[x].data;
    }
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(bits(vals[0][i]), bits(vals[1][i])) << i;
    EXPECT_EQ(wg[0], wg[1]);
    EXPECT_EQ(xg[0], xg[1]);
}

// --------------------------------------------- arena lifecycle

TEST(ArenaTape, ClearRebuildReproducesBitsWithoutGrowth)
{
    Rng rng(114);
    ParamSet params;
    LstmCell cell(params, 4, 6, rng);
    Linear head(params, 6, 1, rng);
    Grads grads(params);
    Graph g;

    Tensor xv(4, 1);
    xv.uniformInit(rng, 1.0);

    auto run = [&] {
        g.clear();
        grads.zero();
        Ctx ctx{g, params, &grads};
        auto s = cell.initial(ctx);
        s = cell.step(ctx, g.input(xv), s);
        s = cell.step(ctx, g.input(xv), s);
        Var loss = g.lossMse(head.forward(ctx, s.h), 0.7);
        g.backward(loss);
        return g.scalarValue(loss);
    };

    const double first = run();
    const size_t nodes = g.numNodes();
    const size_t doubles = g.arenaDoubles();
    std::vector<double> first_grads = grads[0].data;
    for (int iter = 0; iter < 5; ++iter) {
        const double again = run();
        EXPECT_EQ(bits(first), bits(again));
        // Identical tape, identical storage: the arena's high-water
        // mark must not creep.
        EXPECT_EQ(g.numNodes(), nodes);
        EXPECT_EQ(g.arenaDoubles(), doubles);
        EXPECT_EQ(grads[0].data, first_grads);
    }
}

TEST(ArenaTape, ParamSetLoadRejectsVersionMismatch)
{
    ParamSet params;
    params.add(2, 1);
    Rng rng(115);
    params[0].uniformInit(rng, 1.0);
    std::string blob = params.save();

    ParamSet other;
    other.add(2, 1);
    other.load(blob); // round-trips

    // Corrupt the version token: load() must reject it loudly
    // instead of silently ignoring it.
    const std::string bad =
        "difftune-nn v9" + blob.substr(blob.find(" 1\n"));
    EXPECT_THROW(other.load(bad), std::runtime_error);

    const std::string bad_magic =
        "difftune-xx v1" + blob.substr(blob.find(" 1\n"));
    EXPECT_THROW(other.load(bad_magic), std::runtime_error);
}

} // namespace
} // namespace difftune::nn
