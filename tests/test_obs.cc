/**
 * @file
 * Tests for the telemetry layer (obs::): histogram bucket math and
 * the documented percentile error bound against an exact sorted
 * reference, snapshot merge algebra, multi-threaded record()
 * conservation, registry find-or-create and collision handling,
 * the DIFFTUNE_OBS_OFF kill switch, the /statsz text and JSON
 * exporters, and the AsyncEngine mirroring contract
 * (requests == text_hits + text_misses == hits + misses) through a
 * private registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "io/checkpoint.hh"
#include "isa/parse.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/stage_timer.hh"
#include "params/sampling.hh"
#include "serve/engine.hh"

namespace difftune::obs
{
namespace
{

/** Deterministic 64-bit LCG (no global RNG state in tests). */
uint64_t
nextRand(uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
}

// ------------------------------------------------------- bucket math

TEST(LatencyHistogram, UnitBucketsAreExact)
{
    // Values below 2*kSub (16) land in per-value buckets whose
    // midpoint reproduces the value exactly.
    for (uint64_t v = 0; v < 2 * LatencyHistogram::kSub; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), size_t(v));
        EXPECT_EQ(LatencyHistogram::bucketMidpoint(size_t(v)),
                  double(v));
    }
}

TEST(LatencyHistogram, BucketBoundsAreMonotoneAndTight)
{
    for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
        const uint64_t lo = LatencyHistogram::bucketLowerBound(i);
        const uint64_t next = LatencyHistogram::bucketLowerBound(i + 1);
        ASSERT_LT(lo, next) << "bucket " << i;
        // Every bucket's lower bound maps back to that bucket, and
        // the last value before the next bucket does too.
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(next - 1), i);
    }
}

TEST(LatencyHistogram, OverflowClampsIntoTopBucket)
{
    LatencyHistogram hist;
    hist.record(~uint64_t(0));
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count(), 1u);
    EXPECT_EQ(snap.counts.back(), 1u);
    EXPECT_GT(snap.maxEstimate(), 0.0);
}

// -------------------------------------------- percentile error bound

TEST(LatencyHistogram, PercentilesWithinDocumentedBound)
{
    // Log-uniform samples across the interesting range, estimated
    // percentiles checked against the exact nearest-rank order
    // statistic of the same data. kMaxRelativeError (1/16) is the
    // documented contract; see the metrics.hh file comment for the
    // derivation.
    LatencyHistogram hist;
    std::vector<uint64_t> exact;
    uint64_t state = 0x5eed;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t magnitude = 1ull
                                   << (nextRand(state) % 30);
        const uint64_t value =
            magnitude + nextRand(state) % magnitude;
        hist.record(value);
        exact.push_back(value);
    }
    std::sort(exact.begin(), exact.end());
    const HistogramSnapshot snap = hist.snapshot();
    ASSERT_EQ(snap.count(), exact.size());
    for (const double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        size_t rank =
            size_t(std::ceil(p * double(exact.size())));
        rank = std::max<size_t>(rank, 1) - 1;
        const double truth = double(exact[rank]);
        EXPECT_NEAR(snap.percentile(p), truth,
                    truth * LatencyHistogram::kMaxRelativeError)
            << "p = " << p;
    }
}

TEST(LatencyHistogram, SmallValueGoldens)
{
    // Sub-16 values are exact, so these percentiles are equalities,
    // not bounds.
    LatencyHistogram hist;
    for (const uint64_t v : {3u, 5u, 5u, 7u})
        hist.record(v);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count(), 4u);
    EXPECT_EQ(snap.sum, 20u);
    EXPECT_DOUBLE_EQ(snap.mean(), 5.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0.99), 7.0);
    EXPECT_DOUBLE_EQ(snap.maxEstimate(), 7.0);
}

TEST(LatencyHistogram, EmptySnapshotHasSanePercentiles)
{
    // Pins the zero-sample contract serving reports rely on
    // (serve::latencyFromHistogram): an empty snapshot answers 0.0
    // for every percentile and statistic — no NaN, no UB, no
    // crash — so a workload where nothing was recorded renders as
    // zeros rather than garbage.
    LatencyHistogram hist;
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count(), 0u);
    EXPECT_EQ(snap.sum, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(snap.percentile(p), 0.0) << "p=" << p;
    EXPECT_DOUBLE_EQ(snap.maxEstimate(), 0.0);
}

// ------------------------------------------------------ merge algebra

TEST(HistogramSnapshot, MergeIsAssociativeAndMatchesUnion)
{
    LatencyHistogram a, b, c, all;
    uint64_t state = 77;
    for (int i = 0; i < 300; ++i) {
        const uint64_t v = nextRand(state) % 100000;
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
        all.record(v);
    }
    HistogramSnapshot left = a.snapshot(); // (a + b) + c
    left.merge(b.snapshot());
    left.merge(c.snapshot());
    HistogramSnapshot bc = b.snapshot(); // a + (b + c)
    bc.merge(c.snapshot());
    HistogramSnapshot right = a.snapshot();
    right.merge(bc);
    const HistogramSnapshot whole = all.snapshot();
    EXPECT_EQ(left.counts, right.counts);
    EXPECT_EQ(left.sum, right.sum);
    EXPECT_EQ(left.counts, whole.counts);
    EXPECT_EQ(left.sum, whole.sum);
}

// ------------------------------------------------- concurrent records

TEST(LatencyHistogram, ConcurrentRecordsConserveCountAndSum)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    LatencyHistogram hist;
    std::vector<std::thread> threads;
    std::atomic<uint64_t> expected_sum{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, &expected_sum, t] {
            uint64_t state = uint64_t(t) + 1;
            uint64_t local = 0;
            for (int i = 0; i < kPerThread; ++i) {
                const uint64_t v = nextRand(state) % (1u << 20);
                hist.record(v);
                local += v;
            }
            expected_sum.fetch_add(local);
        });
    }
    for (auto &thread : threads)
        thread.join();
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(snap.sum, expected_sum.load());
}

// ------------------------------------------------------------ registry

TEST(MetricRegistry, FindOrCreateReturnsSameInstance)
{
    MetricRegistry reg;
    Counter &c1 = reg.counter("a.count");
    Counter &c2 = reg.counter("a.count");
    EXPECT_EQ(&c1, &c2);
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_EQ(&reg.histogram("a.hist"), &reg.histogram("a.hist"));
    EXPECT_EQ(&reg.gauge("a.gauge"), &reg.gauge("a.gauge"));
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricRegistry, KindCollisionIsFatal)
{
    MetricRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.histogram("x"), std::runtime_error);
    EXPECT_THROW(reg.gauge("x"), std::runtime_error);
    std::atomic<uint64_t> src{0};
    EXPECT_THROW(reg.linkCounter("x", &src), std::runtime_error);
}

TEST(MetricRegistry, InvalidNamesAreFatal)
{
    MetricRegistry reg;
    EXPECT_THROW(reg.counter(""), std::runtime_error);
    EXPECT_THROW(reg.counter("white space"), std::runtime_error);
    EXPECT_THROW(reg.counter("new\nline"), std::runtime_error);
}

TEST(MetricRegistry, LinkedCountersReadLiveAndUnlinkByPrefix)
{
    MetricRegistry reg;
    std::atomic<uint64_t> a{5}, b{7};
    reg.linkCounter("eng.a", &a);
    reg.linkCounter("eng.b", &b);
    reg.counter("eng.owned").inc(); // owned: must survive unlink
    reg.histogram("other.hist");
    a.fetch_add(10);
    auto samples = reg.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].name, "eng.a");
    EXPECT_EQ(samples[0].counterValue, 15u);
    // Re-linking a taken name is the two-live-engines error.
    EXPECT_THROW(reg.linkCounter("eng.a", &b), std::runtime_error);
    reg.unlinkCounters("eng.");
    samples = reg.samples();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].name, "eng.owned");
    EXPECT_EQ(samples[1].name, "other.hist");
}

// --------------------------------------------------------- kill switch

TEST(ObsEnabled, KillSwitchAndEnvReload)
{
    // Process-global switch: restore before leaving either way.
    struct Restore
    {
        ~Restore()
        {
            unsetenv("DIFFTUNE_OBS_OFF");
            setEnabled(true);
        }
    } restore;
    setEnabled(true);
    EXPECT_TRUE(enabled());
    setEnabled(false);
    EXPECT_FALSE(enabled());
    setenv("DIFFTUNE_OBS_OFF", "1", 1);
    reloadEnabledFromEnv();
    EXPECT_FALSE(enabled());
    // "0" and empty both mean on, any other value means off.
    setenv("DIFFTUNE_OBS_OFF", "0", 1);
    reloadEnabledFromEnv();
    EXPECT_TRUE(enabled());
    unsetenv("DIFFTUNE_OBS_OFF");
    reloadEnabledFromEnv();
    EXPECT_TRUE(enabled());
}

TEST(ObsEnabled, DisabledStageTimersRecordNothing)
{
    LatencyHistogram hist;
    {
        StageTimer span(nullptr); // disabled subsystem passes null
        StageClock clock(false);
        clock.restart();
        clock.lap(&hist);
    }
    EXPECT_EQ(hist.snapshot().count(), 0u);
    {
        StageTimer span(&hist);
        EXPECT_GT(span.stop(), 0u);
        EXPECT_EQ(span.stop(), 0u); // idempotent
    }
    EXPECT_EQ(hist.snapshot().count(), 1u);
}

TEST(ObsClock, MonotoneAndElapsedClamps)
{
    const uint64_t a = nowNs();
    const uint64_t b = nowNs();
    EXPECT_GE(b, a);
    EXPECT_EQ(elapsedNs(a, b), b - a);
    EXPECT_EQ(elapsedNs(b + 1000, b), 0u); // skew clamps, no wrap
}

// ----------------------------------------------------------- exporters

TEST(Statsz, TextAndJsonGoldens)
{
    MetricRegistry reg;
    reg.counter("app.requests").inc(42);
    reg.gauge("app.depth").set(-3);
    LatencyHistogram &hist = reg.histogram("app.lat_ns");
    for (const uint64_t v : {3u, 5u, 5u, 7u})
        hist.record(v);
    EXPECT_EQ(renderStatsz(reg),
              "gauge app.depth -3\n"
              "histogram app.lat_ns count 4 sum 20 mean 5.0 "
              "p50 5.0 p90 7.0 p95 7.0 p99 7.0 max 7.0\n"
              "counter app.requests 42\n");
    EXPECT_EQ(renderStatszJson(reg),
              "{\"counters\":{\"app.requests\":42},"
              "\"gauges\":{\"app.depth\":-3},"
              "\"histograms\":{\"app.lat_ns\":{\"count\":4,"
              "\"sum\":20,\"mean\":5.0,\"p50\":5.0,\"p90\":7.0,"
              "\"p95\":7.0,\"p99\":7.0,\"max\":7.0}}}");
}

TEST(Statsz, CounterParsesBackOutOfDump)
{
    MetricRegistry reg;
    reg.counter("a.b").inc(9);
    reg.counter("a.bb").inc(11);
    const std::string dump = renderStatsz(reg);
    EXPECT_EQ(statszCounter(dump, "a.b"), std::optional<uint64_t>(9));
    EXPECT_EQ(statszCounter(dump, "a.bb"),
              std::optional<uint64_t>(11));
    EXPECT_EQ(statszCounter(dump, "a.missing"), std::nullopt);
    EXPECT_EQ(statszCounter("", "a.b"), std::nullopt);
}

// ------------------------------------------------- engine integration

io::Checkpoint
tinyCheckpoint()
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.seed = 5;
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    cfg.paramDim = norm.paramDim();
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        cfg, isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    ckpt.dist = dist;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    return ckpt;
}

std::vector<std::string>
corpusTexts(size_t count, uint64_t seed)
{
    const auto corpus = bhive::Corpus::generate(count, seed);
    std::vector<std::string> texts;
    texts.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        texts.push_back(isa::toString(corpus[i].block));
    return texts;
}

TEST(EngineTelemetry, MirrorsReconcileInPrivateRegistry)
{
    MetricRegistry reg;
    serve::AsyncConfig cfg;
    cfg.metricPrefix = "t1";
    cfg.registry = &reg;
    const auto texts = corpusTexts(12, 0x0b5);
    {
        serve::AsyncEngine engine(tinyCheckpoint(), cfg);
        EXPECT_EQ(engine.metricPrefix(), "t1");
        for (const auto &text : texts)
            engine.predict(text);
        for (const auto &text : texts)
            engine.predict(text); // warm pass: text-cache hits
        const std::string dump = renderStatsz(reg);
        const auto counter = [&dump](const char *name) {
            const auto v = statszCounter(dump, name);
            return v ? *v : ~uint64_t(0);
        };
        // The mirroring contract, audited through the exporter.
        EXPECT_EQ(counter("t1.requests"),
                  counter("t1.text_hits") +
                      counter("t1.text_misses"));
        EXPECT_EQ(counter("t1.requests"),
                  counter("t1.hits") + counter("t1.misses"));
        EXPECT_EQ(counter("t1.requests"), 2 * texts.size());
        EXPECT_EQ(counter("t1.text_hits"), texts.size());
        // Head-based sampling records 1 in kStageSamplePeriod sync
        // predicts, starting with the first: 24 predicts -> 3.
        HistogramSnapshot req, parse;
        for (const auto &sample : reg.samples()) {
            if (sample.name == "t1.request_ns")
                req = sample.hist;
            if (sample.name == "t1.stage.parse_ns")
                parse = sample.hist;
        }
        EXPECT_EQ(req.count(), 3u);
        EXPECT_GE(parse.count(), 1u);
    }
    // Engine teardown unlinks the ServeStats mirrors (their atomics
    // died with it) but registry-owned histograms survive.
    const std::string dump = renderStatsz(reg);
    EXPECT_EQ(statszCounter(dump, "t1.requests"), std::nullopt);
    EXPECT_NE(dump.find("histogram t1.request_ns"),
              std::string::npos);
}

TEST(EngineTelemetry, SecondLiveEngineOnSamePrefixIsFatal)
{
    MetricRegistry reg;
    serve::AsyncConfig cfg;
    cfg.metricPrefix = "dup";
    cfg.registry = &reg;
    serve::AsyncEngine first(tinyCheckpoint(), cfg);
    EXPECT_THROW(serve::AsyncEngine(tinyCheckpoint(), cfg),
                 std::runtime_error);
    // The failed construction rolled back cleanly: the first
    // engine's mirrors still read and a fresh prefix still works.
    EXPECT_NE(renderStatsz(reg).find("counter dup.requests"),
              std::string::npos);
    serve::AsyncConfig other = cfg;
    other.metricPrefix = "dup2";
    serve::AsyncEngine second(tinyCheckpoint(), other);
    EXPECT_EQ(second.metricPrefix(), "dup2");
}

TEST(EngineTelemetry, KillSwitchDisablesRegistration)
{
    MetricRegistry reg;
    serve::AsyncConfig cfg;
    cfg.metricPrefix = "off";
    cfg.registry = &reg;
    setEnabled(false);
    serve::AsyncEngine engine(tinyCheckpoint(), cfg);
    setEnabled(true);
    EXPECT_TRUE(engine.metricPrefix().empty());
    EXPECT_EQ(reg.size(), 0u);
    // And it still serves (the no-op instrumentation path).
    const auto texts = corpusTexts(4, 0x0ff);
    for (const auto &text : texts)
        EXPECT_GT(engine.predict(text), 0.0);
    EXPECT_EQ(reg.size(), 0u);
}

} // namespace
} // namespace difftune::obs
