/**
 * @file
 * Tests for the difftuned serving daemon stack: ModelRegistry
 * (bit-exact serving, zero-downtime hot-swap under concurrent load,
 * fail-closed swaps, drain semantics), the length-prefixed wire
 * protocol end to end over loopback TCP (predict/statsz/list/ping,
 * hot-swap via kLoad, malformed-frame handling), graceful drain
 * with in-flight traffic, and the workload helpers' zero-sample
 * latency guard.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "io/checkpoint.hh"
#include "isa/parse.hh"
#include "obs/export.hh"
#include "serve/daemon.hh"
#include "serve/workload.hh"

namespace difftune::serve
{
namespace
{

surrogate::ModelConfig
tinyConfig(int param_dim, uint64_t seed)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = param_dim;
    cfg.seed = seed;
    return cfg;
}

/** Untrained full-pipeline checkpoint; @p seed varies the weights. */
io::Checkpoint
surrogateCheckpoint(uint64_t seed)
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(norm.paramDim(), seed), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    ckpt.dist = dist;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    return ckpt;
}

io::ModelSnapshot
artifactWithSeed(uint64_t seed)
{
    return io::makeModelSnapshot(surrogateCheckpoint(seed));
}

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/** Canonical texts of a generated corpus. */
std::vector<std::string>
corpusTexts(size_t count, uint64_t seed)
{
    const auto corpus = bhive::Corpus::generate(count, seed);
    std::vector<std::string> texts;
    texts.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        texts.push_back(isa::toString(corpus[i].block));
    return texts;
}

/** Sequential double-precision references for @p texts. */
std::vector<double>
references(const io::ModelSnapshot &artifact,
           const std::vector<std::string> &texts)
{
    const PredictionEngine engine(artifact);
    std::vector<double> refs;
    refs.reserve(texts.size());
    for (const auto &text : texts)
        refs.push_back(engine.predictUncached(text));
    return refs;
}

/** Registry config pointing at @p metrics with few workers (tests
 *  run many engines; keep each small). */
RegistryConfig
testRegistryConfig(obs::MetricRegistry *metrics)
{
    RegistryConfig cfg;
    cfg.engine.workers = 2;
    cfg.registry = metrics;
    return cfg;
}

/** Save @p seed's checkpoint under gtest's temp dir. */
std::string
saveTempCheckpoint(const std::string &stem, uint64_t seed)
{
    const std::string path =
        (std::filesystem::path(testing::TempDir()) /
         (stem + ".ckpt"))
            .string();
    const io::Checkpoint ckpt = surrogateCheckpoint(seed);
    io::saveCheckpoint(path, ckpt.model.get(), &*ckpt.dist,
                       &*ckpt.table);
    return path;
}

TEST(ModelRegistry, ServesBitExactAgainstReference)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    const io::ModelSnapshot artifact = artifactWithSeed(5);
    const auto texts = corpusTexts(12, 0x11a);
    const auto refs = references(artifact, texts);

    registry.load("haswell", artifact);
    EXPECT_EQ(registry.size(), 1u);
    const auto engine = registry.acquire("haswell");
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(engine->predict(texts[i]), refs[i]))
            << "request " << i;
}

TEST(ModelRegistry, UnknownNameThrowsAndFindReturnsNull)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    EXPECT_EQ(registry.find("nope"), nullptr);
    EXPECT_THROW(registry.acquire("nope"), UnknownModelError);
    registry.load("a", artifactWithSeed(5));
    // The error names what *is* serving, for operators.
    try {
        registry.acquire("nope");
        FAIL() << "acquire should have thrown";
    } catch (const UnknownModelError &error) {
        EXPECT_NE(std::string(error.what()).find("a"),
                  std::string::npos);
    }
}

TEST(ModelRegistry, RejectsMetricUnsafeNames)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    EXPECT_THROW(registry.load("bad name", artifactWithSeed(5)),
                 std::runtime_error);
    EXPECT_THROW(registry.load("", artifactWithSeed(5)),
                 std::runtime_error);
    EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistry, SwapKeepsAcquiredEngineAlive)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    const io::ModelSnapshot a = artifactWithSeed(5);
    const io::ModelSnapshot b = artifactWithSeed(9);
    const auto texts = corpusTexts(6, 0x22b);
    const auto refA = references(a, texts);
    const auto refB = references(b, texts);

    registry.load("m", a);
    const auto old_engine = registry.acquire("m");
    registry.load("m", b); // hot-swap
    EXPECT_EQ(registry.swaps(), 1u);

    // The pre-swap reference still answers, from the *old* weights
    // — exactly what an in-flight request sees mid-swap.
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(old_engine->predict(texts[i]), refA[i]));
    // A fresh acquire gets the new weights.
    const auto new_engine = registry.acquire("m");
    EXPECT_NE(new_engine.get(), old_engine.get());
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(new_engine->predict(texts[i]), refB[i]));
}

TEST(ModelRegistry, FailedSwapLeavesLiveEngineServing)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    const io::ModelSnapshot a = artifactWithSeed(5);
    const auto texts = corpusTexts(4, 0x33c);
    const auto refA = references(a, texts);

    registry.load("m", a);
    EXPECT_THROW(
        registry.loadFromFile("m", "/nonexistent/path.ckpt"),
        std::exception);
    // Fail closed: the old engine never stopped serving.
    EXPECT_EQ(registry.swaps(), 0u);
    const auto engine = registry.acquire("m");
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(engine->predict(texts[i]), refA[i]));
}

TEST(ModelRegistry, RemoveAndNames)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    registry.load("b", artifactWithSeed(5));
    registry.load("a", artifactWithSeed(9));
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(registry.remove("a"));
    EXPECT_FALSE(registry.remove("a"));
    EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, ReloadAfterRemoveNeverReusesMetricGeneration)
{
    // Generations are monotonic per name and survive remove(): a
    // removed-but-still-referenced engine must never share a metric
    // prefix (and thus Counter objects) with its reloaded successor.
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    const auto texts = corpusTexts(2, 0x99a);

    registry.load("m", artifactWithSeed(5)); // g0
    const auto old_engine = registry.acquire("m");
    EXPECT_TRUE(registry.remove("m"));
    registry.load("m", artifactWithSeed(9)); // must be g1, not g0
    const auto new_engine = registry.acquire("m");
    EXPECT_NE(new_engine.get(), old_engine.get());

    old_engine->predict(texts[0]);
    new_engine->predict(texts[0]);
    new_engine->predict(texts[1]);
    if (obs::enabled()) {
        const std::string dump = obs::renderStatsz(metrics);
        const auto g0 =
            obs::statszCounter(dump, "model.m.g0.requests");
        const auto g1 =
            obs::statszCounter(dump, "model.m.g1.requests");
        ASSERT_TRUE(g0.has_value() && g1.has_value());
        EXPECT_EQ(*g0, 1u); // merged telemetry would read 3 here
        EXPECT_EQ(*g1, 2u);
    }
}

TEST(ModelRegistry, DrainRejectsNewWorkButKeepsResolving)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    registry.load("m", artifactWithSeed(5));
    registry.drain();
    EXPECT_TRUE(registry.draining());
    // Late acquires still resolve — but the engine refuses intake
    // with the catchable per-request error, not a process fatal.
    const auto engine = registry.acquire("m");
    EXPECT_THROW(engine->submit("NOP\n"), EngineStoppedError);
    EXPECT_THROW(registry.load("x", artifactWithSeed(9)),
                 UnknownModelError);
    registry.drain(); // idempotent
}

/**
 * The tentpole acceptance test: N client threads hammer predict
 * through acquire() while the main thread hot-swaps the model
 * repeatedly. Zero errors are tolerated and every single answer
 * must bit-match one of the two snapshots' sequential references —
 * a swap's only observable effect is *which* of the two it matches.
 * The TSan CI job runs this same test for the data-race angle.
 */
TEST(ModelRegistry, HotSwapUnderConcurrentLoadDropsNothing)
{
    obs::MetricRegistry metrics;
    ModelRegistry registry(testRegistryConfig(&metrics));
    const io::ModelSnapshot a = artifactWithSeed(5);
    const io::ModelSnapshot b = artifactWithSeed(9);
    const auto texts = corpusTexts(10, 0x44d);
    const auto refA = references(a, texts);
    const auto refB = references(b, texts);
    // The two snapshots must actually disagree for the bit-match
    // check below to mean anything.
    for (size_t i = 0; i < texts.size(); ++i)
        ASSERT_FALSE(sameBits(refA[i], refB[i])) << "text " << i;

    registry.load("m", a);
    constexpr int kClients = 4;
    constexpr int kSwaps = 6;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> answered{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            size_t i = size_t(t);
            while (!stop.load(std::memory_order_acquire)) {
                const size_t slot = i++ % texts.size();
                double got = 0.0;
                try {
                    got = registry.acquire("m")->predict(
                        texts[slot]);
                } catch (const std::exception &) {
                    errors.fetch_add(1,
                                     std::memory_order_relaxed);
                    continue;
                }
                answered.fetch_add(1, std::memory_order_relaxed);
                if (!sameBits(got, refA[slot]) &&
                    !sameBits(got, refB[slot]))
                    mismatches.fetch_add(
                        1, std::memory_order_relaxed);
            }
        });
    }
    // Swap back and forth while the clients run: b, a, b, a, b, a —
    // the even number of swaps lands back on `a`.
    for (int s = 0; s < kSwaps; ++s) {
        registry.load("m", s % 2 == 0 ? b : a);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_release);
    for (auto &client : clients)
        client.join();

    EXPECT_EQ(errors.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_GT(answered.load(), 0u);
    EXPECT_EQ(registry.swaps(), uint64_t(kSwaps));
    // Settled state: the final engine serves exactly `a`.
    const auto engine = registry.acquire("m");
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(engine->predict(texts[i]), refA[i]));
}

TEST(Daemon, LoopbackPredictListPingStatsz)
{
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    Daemon daemon(cfg);
    const io::ModelSnapshot artifact = artifactWithSeed(5);
    const auto texts = corpusTexts(8, 0x55e);
    const auto refs = references(artifact, texts);
    daemon.registry().load("haswell", artifact);
    daemon.start();
    ASSERT_GT(daemon.port(), 0);

    DaemonClient client(daemon.port());
    client.ping();
    EXPECT_EQ(client.models(),
              (std::vector<std::string>{"haswell"}));
    // Bit-exactness survives the wire: f64 crosses as its bit
    // pattern, never through decimal text.
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(
            sameBits(client.predict("haswell", texts[i]), refs[i]))
            << "request " << i;

    // Unknown model: an error *response*; the connection survives.
    EXPECT_THROW(client.predict("zen2", texts[0]), DaemonError);
    client.ping();

    if (obs::enabled()) {
        const std::string dump = client.statsz();
        const auto requests = obs::statszCounter(
            dump, "model.haswell.g0.requests");
        ASSERT_TRUE(requests.has_value());
        EXPECT_EQ(*requests, texts.size());
        const auto hits =
            obs::statszCounter(dump, "model.haswell.g0.hits");
        const auto misses =
            obs::statszCounter(dump, "model.haswell.g0.misses");
        ASSERT_TRUE(hits.has_value() && misses.has_value());
        EXPECT_EQ(*hits + *misses, *requests);
        EXPECT_EQ(*obs::statszCounter(dump, "model.daemon.errors"),
                  1u); // the zen2 miss above
    }
    EXPECT_GE(daemon.requestsServed(), texts.size() + 3);
    EXPECT_EQ(daemon.errorsServed(), 1u);
}

TEST(Daemon, HotSwapOverTheWire)
{
    const std::string path_a = saveTempCheckpoint("daemon_swap_a", 5);
    const std::string path_b = saveTempCheckpoint("daemon_swap_b", 9);
    const auto texts = corpusTexts(5, 0x66f);
    const auto refA =
        references(io::loadModelSnapshot(path_a), texts);
    const auto refB =
        references(io::loadModelSnapshot(path_b), texts);

    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    Daemon daemon(cfg);
    daemon.registry().loadFromFile("m", path_a);
    daemon.start();

    DaemonClient client(daemon.port());
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(client.predict("m", texts[i]), refA[i]));
    client.load("m", path_b); // kLoad = hot-swap over the wire
    EXPECT_EQ(daemon.registry().swaps(), 1u);
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(client.predict("m", texts[i]), refB[i]));
    // A bad swap is an error response and changes nothing.
    EXPECT_THROW(client.load("m", "/nonexistent.ckpt"), DaemonError);
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(sameBits(client.predict("m", texts[i]), refB[i]));
}

TEST(Daemon, ConcurrentClientsWithHotSwapSeeNoErrors)
{
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    Daemon daemon(cfg);
    const io::ModelSnapshot a = artifactWithSeed(5);
    const io::ModelSnapshot b = artifactWithSeed(9);
    const auto texts = corpusTexts(10, 0x770);
    const auto refA = references(a, texts);
    const auto refB = references(b, texts);
    daemon.registry().load("m", a);
    daemon.start();

    // A workload large enough that the mid-run swap lands against
    // live wire traffic.
    std::vector<std::string> workload;
    for (int round = 0; round < 40; ++round)
        for (const auto &text : texts)
            workload.push_back(text);

    std::thread swapper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        daemon.registry().load("m", b);
    });
    const DaemonClientRun run = runDaemonClients(
        "127.0.0.1", daemon.port(), "m", workload, 4);
    swapper.join();

    EXPECT_EQ(run.errors, 0u);
    ASSERT_EQ(run.predictions.size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
        const size_t slot = i % texts.size();
        EXPECT_TRUE(sameBits(run.predictions[i], refA[slot]) ||
                    sameBits(run.predictions[i], refB[slot]))
            << "request " << i;
    }
    EXPECT_GT(run.seconds, 0.0);
}

TEST(Daemon, GracefulDrainAnswersEverythingAccepted)
{
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    Daemon daemon(cfg);
    const io::ModelSnapshot artifact = artifactWithSeed(5);
    const auto texts = corpusTexts(6, 0x881);
    const auto refs = references(artifact, texts);
    daemon.registry().load("m", artifact);
    daemon.start();

    std::vector<std::string> workload;
    for (int round = 0; round < 50; ++round)
        for (const auto &text : texts)
            workload.push_back(text);

    // Drain fires while clients are mid-run. Past that point their
    // requests fail (connection closed / kDraining) — but every
    // response that *does* arrive must still be exact, and drain()
    // itself must settle everything and return.
    std::thread drainer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        daemon.drain();
    });
    const DaemonClientRun run = runDaemonClients(
        "127.0.0.1", daemon.port(), "m", workload, 4);
    drainer.join();
    EXPECT_TRUE(daemon.draining());

    size_t answered = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
        if (std::isnan(run.predictions[i]))
            continue; // rejected by the drain — allowed
        ++answered;
        EXPECT_TRUE(
            sameBits(run.predictions[i], refs[i % texts.size()]))
            << "request " << i;
    }
    EXPECT_EQ(answered + run.errors, workload.size());
    // New connections are refused once drained.
    EXPECT_THROW(
        {
            DaemonClient late(daemon.port());
            late.ping();
        },
        DaemonError);
}

TEST(Daemon, MalformedFramesGetErrorsNotCrashes)
{
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    cfg.maxFrameBytes = 1024;
    Daemon daemon(cfg);
    daemon.registry().load("m", artifactWithSeed(5));
    daemon.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // Frame with an unknown opcode: kError response, connection
    // stays up.
    const unsigned char bad_op[] = {1, 0, 0, 0, 0xee};
    ASSERT_EQ(::send(fd, bad_op, sizeof(bad_op), 0),
              ssize_t(sizeof(bad_op)));
    unsigned char header[4];
    ASSERT_EQ(::recv(fd, header, 4, MSG_WAITALL), 4);
    const uint32_t len = uint32_t(header[0]) |
                         (uint32_t(header[1]) << 8) |
                         (uint32_t(header[2]) << 16) |
                         (uint32_t(header[3]) << 24);
    ASSERT_GT(len, 0u);
    ASSERT_LE(len, 1024u);
    std::vector<unsigned char> body(len);
    ASSERT_EQ(::recv(fd, body.data(), len, MSG_WAITALL),
              ssize_t(len));
    EXPECT_EQ(body[0], wire::kError);

    // Truncated predict frame: still an error response.
    const unsigned char truncated[] = {2, 0, 0, 0, wire::kPredict,
                                       9};
    ASSERT_EQ(::send(fd, truncated, sizeof(truncated), 0),
              ssize_t(sizeof(truncated)));
    ASSERT_EQ(::recv(fd, header, 4, MSG_WAITALL), 4);

    // A length prefix past maxFrameBytes: the daemon hangs up
    // rather than allocating it.
    const unsigned char huge[] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::send(fd, huge, sizeof(huge), 0),
              ssize_t(sizeof(huge)));
    // Drain whatever remains of the truncated-frame response, then
    // expect EOF.
    char sink[4096];
    ssize_t got;
    while ((got = ::recv(fd, sink, sizeof(sink), 0)) > 0) {
    }
    EXPECT_EQ(got, 0);
    ::close(fd);

    // The daemon is still healthy for well-formed clients.
    DaemonClient client(daemon.port());
    client.ping();
    EXPECT_GE(daemon.errorsServed(), 2u);
}

TEST(Daemon, OversizedStatszIsAProtocolErrorNotADesync)
{
    if (!obs::enabled())
        GTEST_SKIP() << "statsz dump is empty with obs disabled";
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    cfg.maxFrameBytes = 64; // far below any real metric dump
    Daemon daemon(cfg);
    daemon.registry().load("m", artifactWithSeed(5));
    daemon.start();

    DaemonClient client(daemon.port());
    try {
        client.statsz();
        FAIL() << "statsz should have errored";
    } catch (const DaemonError &error) {
        EXPECT_NE(std::string(error.what()).find("statsz"),
                  std::string::npos);
    }
    // kError keeps the connection usable — the old behavior sent a
    // frame over the limit, which desynced the connection.
    client.ping();
}

TEST(DaemonClient, RejectsOverlongModelNamesBeforeSending)
{
    obs::MetricRegistry metrics;
    DaemonConfig cfg;
    cfg.registry = testRegistryConfig(&metrics);
    Daemon daemon(cfg);
    daemon.start();

    // A name past the u16 length field used to truncate silently,
    // desyncing the frame; now the client refuses to encode it.
    DaemonClient client(daemon.port());
    const std::string huge(70000, 'x');
    EXPECT_THROW(client.predict(huge, "NOP\n"), DaemonError);
    EXPECT_THROW(client.load(huge, "/tmp/none.ckpt"), DaemonError);
    client.ping(); // the bad frames were never sent
}

TEST(Workload, LatencyFromEmptyHistogramIsAllZero)
{
    // Satellite of the serving-contract fixes: percentile stats of
    // a histogram that recorded nothing must be explicit zeros (the
    // old code asked an empty snapshot for p50/p95/p99 directly).
    obs::LatencyHistogram hist;
    const LatencyStats stats = latencyFromHistogram(hist);
    EXPECT_EQ(stats.p50, 0.0);
    EXPECT_EQ(stats.p95, 0.0);
    EXPECT_EQ(stats.p99, 0.0);

    hist.recordSeconds(1e-3);
    const LatencyStats one = latencyFromHistogram(hist);
    EXPECT_GT(one.p50, 0.0);
    EXPECT_GT(one.p99, 0.0);
}

} // namespace
} // namespace difftune::serve
