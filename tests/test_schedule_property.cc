/**
 * @file
 * Property tests for the interval-based resource scheduler, checked
 * against an exact brute-force occupancy mirror: every grant must be
 * conflict-free, no earlier feasible start may exist (greedy
 * minimality, which is what preserves age priority), and the mirror
 * and scheduler must never diverge across long random request
 * streams.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/interval_schedule.hh"
#include "base/random.hh"

namespace difftune
{
namespace
{

/** Brute-force mirror: per port, the set of busy cycles. */
class Mirror
{
  public:
    explicit Mirror(int ports) : busy_(ports) {}

    bool
    fits(const std::vector<PortSchedule::Requirement> &reqs,
         int64_t start) const
    {
        for (const auto &[port, occ] : reqs)
            for (int64_t c = start; c < start + occ; ++c)
                if (busy_[port].count(c))
                    return false;
        return true;
    }

    void
    reserve(const std::vector<PortSchedule::Requirement> &reqs,
            int64_t start)
    {
        for (const auto &[port, occ] : reqs)
            for (int64_t c = start; c < start + occ; ++c)
                EXPECT_TRUE(busy_[port].insert(c).second)
                    << "double booking port " << port << " cycle " << c;
    }

  private:
    std::vector<std::set<int64_t>> busy_;
};

class JointScheduleProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(JointScheduleProperty, GrantsAreMinimalAndConflictFree)
{
    Rng rng(GetParam());
    const int num_ports = 4;
    PortSchedule schedule(num_ports);
    Mirror mirror(num_ports);

    for (int step = 0; step < 400; ++step) {
        // Random joint requirement over 1-3 distinct ports.
        std::vector<PortSchedule::Requirement> reqs;
        std::set<int> used;
        const int k = int(rng.uniformInt(1, 3));
        for (int i = 0; i < k; ++i) {
            int port = int(rng.uniformInt(0, num_ports - 1));
            if (!used.insert(port).second)
                continue;
            reqs.emplace_back(port, int(rng.uniformInt(1, 3)));
        }
        const int64_t ready = rng.uniformInt(0, 60);

        const int64_t granted = schedule.acquireJoint(reqs, ready);
        ASSERT_GE(granted, ready);
        // Conflict-free at the granted start.
        ASSERT_TRUE(mirror.fits(reqs, granted)) << "step " << step;
        // Greedy minimality: no earlier feasible start >= ready.
        for (int64_t t = ready; t < granted; ++t)
            ASSERT_FALSE(mirror.fits(reqs, t))
                << "earlier start " << t << " was feasible at step "
                << step;
        mirror.reserve(reqs, granted);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JointScheduleProperty,
                         ::testing::Range(uint64_t(1), uint64_t(11)));

class PoolScheduleProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PoolScheduleProperty, NeverExceedsUnitCount)
{
    const int units = GetParam();
    Rng rng(units * 101);
    PoolSchedule pool(units);

    // Issue many 1-cycle requests with random ready times and count
    // per-cycle concurrency.
    std::map<int64_t, int> concurrency;
    for (int step = 0; step < 500; ++step) {
        const int occ = int(rng.uniformInt(1, 2));
        const int64_t start =
            pool.acquire(rng.uniformInt(0, 100), occ);
        for (int64_t c = start; c < start + occ; ++c) {
            concurrency[c] += 1;
            ASSERT_LE(concurrency[c], units)
                << "cycle " << c << " oversubscribed";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Units, PoolScheduleProperty,
                         ::testing::Values(1, 2, 3, 6));

TEST(ScheduleProperty, PruneDoesNotChangeFutureDecisions)
{
    // Two identical schedulers; one prunes aggressively below the
    // current frontier. Decisions at or after the frontier match.
    Rng rng(42);
    PortSchedule a(3), b(3);
    int64_t frontier = 0;
    for (int step = 0; step < 300; ++step) {
        std::vector<PortSchedule::Requirement> reqs = {
            {int(rng.uniformInt(0, 2)), int(rng.uniformInt(1, 2))}};
        // Monotonically advancing ready times, as in the simulators.
        frontier += rng.uniformInt(0, 2);
        const int64_t ga = a.acquireJoint(reqs, frontier);
        const int64_t gb = b.acquireJoint(reqs, frontier);
        ASSERT_EQ(ga, gb) << "step " << step;
        if (step % 16 == 0)
            b.prune(frontier);
    }
}

} // namespace
} // namespace difftune
