/**
 * @file
 * Front-end tests: the zero-copy tokenizer/parser (A/B
 * byte-equality against a copy of the legacy string-based parser,
 * malformed-input rejection, zero-copy lexeme slicing), the
 * interning layer (canonical identity, near-miss resolution,
 * capacity fallback, concurrent interning — the TSan target), the
 * runtime matvec dispatch (scalar vs AVX2 bitwise equality, path
 * selection), and the serving front end's intern/encode counters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "bhive/corpus.hh"
#include "isa/intern.hh"
#include "isa/parse.hh"
#include "nn/matvec_dispatch.hh"
#include "serve/async_engine.hh"

namespace difftune
{
namespace
{

// ------------------------------------------------------------------
// A verbatim copy of the legacy string-based parser (the
// pre-string_view src/isa/parse.cc), kept here as the A/B reference:
// the zero-copy parser must reproduce its output — and its quirks —
// byte for byte.
namespace legacy
{

void
splitLine(const std::string &line, std::string &op_name,
          std::vector<std::string> &operands)
{
    size_t pos = 0;
    while (pos < line.size() && std::isspace(line[pos]))
        ++pos;
    size_t start = pos;
    while (pos < line.size() && !std::isspace(line[pos]))
        ++pos;
    op_name = line.substr(start, pos - start);

    std::string rest = line.substr(pos);
    std::string current;
    for (char c : rest) {
        if (c == ',') {
            operands.push_back(current);
            current.clear();
        } else if (!std::isspace(c)) {
            current += c;
        }
    }
    if (!current.empty())
        operands.push_back(current);
}

isa::Instruction
parseInstruction(const std::string &line)
{
    using namespace isa;
    std::string op_name;
    std::vector<std::string> operand_strs;
    splitLine(line, op_name, operand_strs);

    OpcodeId opcode = theIsa().opcodeByName(op_name);
    fatal_if(opcode == invalidOpcode, "unknown opcode '{}' in '{}'",
             op_name, line);
    const OpcodeInfo &op = theIsa().info(opcode);

    std::vector<RegId> slots;
    MemRef mem;
    int64_t imm = 0;
    bool saw_imm = false, saw_mem = false;

    for (const std::string &operand : operand_strs) {
        fatal_if(operand.empty(), "empty operand in '{}'", line);
        if (operand[0] == '$') {
            imm = std::strtoll(operand.c_str() + 1, nullptr, 10);
            saw_imm = true;
        } else if (operand[0] == '%') {
            RegId reg = regFromName(operand.substr(1));
            fatal_if(reg == invalidReg,
                     "unknown register '{}' in '{}'", operand, line);
            slots.push_back(reg);
        } else {
            char *end = nullptr;
            long disp = std::strtol(operand.c_str(), &end, 10);
            fatal_if(!end || *end != '(',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            std::string base_str(end + 1);
            fatal_if(base_str.empty() || base_str[0] != '%' ||
                         base_str.back() != ')',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            base_str = base_str.substr(1, base_str.size() - 2);
            RegId base = regFromName(base_str);
            fatal_if(base == invalidReg,
                     "unknown base register in '{}'", operand);
            mem.base = base;
            mem.disp = static_cast<int32_t>(disp);
            saw_mem = true;
        }
    }

    fatal_if(slots.size() != op.numRegOps(),
             "opcode {} takes {} register operands, got {} in '{}'",
             op.name, op.numRegOps(), slots.size(), line);
    fatal_if(op.hasImm && !saw_imm,
             "opcode {} requires an immediate", op.name);
    fatal_if(op.mem != MemMode::None && !op.stackOp && !saw_mem,
             "opcode {} requires a memory operand", op.name);

    return makeInstruction(opcode, slots, mem, imm);
}

isa::BasicBlock
parseBlock(const std::string &text)
{
    isa::BasicBlock block;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        block.insts.push_back(parseInstruction(line));
    }
    return block;
}

} // namespace legacy

/** Canonical text of @p parse(text), or nullopt if it rejects. */
template <typename Parser>
std::optional<std::string>
canonOrReject(Parser &&parse, const std::string &text)
{
    try {
        return isa::toString(parse(text));
    } catch (const std::runtime_error &) {
        return std::nullopt;
    }
}

/** Both parsers on @p text: same accept/reject, same canonical. */
void
expectParsersAgree(const std::string &text)
{
    const auto legacy_out = canonOrReject(
        [](const std::string &t) { return legacy::parseBlock(t); },
        text);
    const auto fresh_out = canonOrReject(
        [](const std::string &t) { return isa::parseBlock(t); },
        text);
    ASSERT_EQ(legacy_out.has_value(), fresh_out.has_value())
        << "parsers disagree on accepting:\n"
        << text;
    if (legacy_out) {
        EXPECT_EQ(*legacy_out, *fresh_out)
            << "canonical output diverged for:\n"
            << text;
    }
}

/**
 * A near-miss respelling of canonical @p text: random whitespace
 * before the mnemonic and anywhere in the operand region (both
 * parsers elide it), plus occasional comment lines. Deterministic
 * per (text, rng state).
 */
std::string
respell(const std::string &text, std::mt19937_64 &rng)
{
    std::string out;
    auto pad = [&] {
        switch (rng() % 4) {
        case 0:
            out += ' ';
            break;
        case 1:
            out += "  ";
            break;
        case 2:
            out += '\t';
            break;
        default:
            break;
        }
    };
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (rng() % 8 == 0)
            out += "# interleaved comment\n";
        pad();
        const size_t sp = line.find(' ');
        if (sp == std::string::npos) {
            out += line;
        } else {
            out += line.substr(0, sp);
            for (char c : line.substr(sp)) {
                out += c;
                if (rng() % 3 == 0)
                    pad();
            }
        }
        pad();
        out += '\n';
    }
    return out;
}

/** Canonical corpus texts, shared across the suites below. */
const std::vector<std::string> &
corpusTexts()
{
    static const std::vector<std::string> texts = [] {
        const bhive::Corpus corpus =
            bhive::Corpus::generate(200, 0xf407e5d);
        std::vector<std::string> out;
        out.reserve(corpus.size());
        for (const auto &info : corpus.blocks())
            out.push_back(isa::toString(info.block));
        return out;
    }();
    return texts;
}

// ------------------------------------------------------------------
// Tokenizer / parser

TEST(FrontendParser, MatchesLegacyParserByteForByte)
{
    std::mt19937_64 rng(0x70ac3);
    for (const std::string &text : corpusTexts()) {
        // The canonical spelling itself, and three near-miss
        // respellings of it, must all round-trip to the same bytes
        // through both parsers.
        expectParsersAgree(text);
        for (int variant = 0; variant < 3; ++variant) {
            const std::string noisy = respell(text, rng);
            expectParsersAgree(noisy);
            const isa::BasicBlock block = isa::parseBlock(noisy);
            EXPECT_EQ(text, isa::toString(block))
                << "respelling changed the canonical form:\n"
                << noisy;
        }
    }
}

TEST(FrontendParser, QuirkSpellingsMatchLegacy)
{
    // The legacy parser's quirks, locked in one by one: whitespace
    // elided *inside* operands, trailing commas tolerated, strtoll
    // immediate semantics (clamping, trailing garbage, no digits),
    // zero-displacement memory shorthand.
    const std::vector<std::string> quirks = {
        "ADD32rr %e bx, %ecx\n",
        "ADD32rr %ebx , %ecx ,\n",
        "ADD64ri $ 42, %rbx\n",
        "ADD64ri $42garbage, %rbx\n",
        "ADD64ri $, %rbx\n",
        "ADD64ri $9223372036854775808, %rbx\n",
        "ADD64ri $-9223372036854775809, %rbx\n",
        "MOV64rm (%rsi), %rdi\n",
        "MOV64rm - 8 ( % r si ), %rdi\n",
        "MOV64rm 8(%rsi), %rdi\r\n",
        "\t ADD32rr\t%ebx,%ecx\n",
        "# only a comment\nNOP\n\n",
        "NOP",
    };
    for (const std::string &text : quirks)
        expectParsersAgree(text);
}

TEST(FrontendParser, MalformedInputsRejectCleanly)
{
    // Truncated operands, stray bytes, huge tokens, structural
    // nonsense: every entry must throw std::runtime_error from both
    // parsers (never crash — CI runs this suite under ASan/UBSan),
    // and the two must agree.
    std::vector<std::string> bad = {
        "BOGUSOP %rax\n",
        "MOV64rm 8(%rsi\n",
        "MOV64rm 8(, %rdi\n",
        "MOV64rm 8%rsi), %rdi\n",
        "MOV64rm 8(%rsi)x, %rdi\n",
        "MOV64rm 8(%bogus), %rdi\n",
        "MOV64rm 8(%rsi), %rdi, %rax\n",
        "MOV64rm %rdi\n",
        "ADD32rr %ebx\n",
        "ADD32rr %ebx, %ecx, %edx\n",
        "ADD32rr %ebx, , %ecx\n",
        "ADD32rr ,\n",
        "ADD64ri %rbx\n",
        "ADD32rr %ebx, %bogus\n",
        "ADD32rr %ebx, $5\n",
        "NOP %rax\n",
        "$42\n",
        "%rax\n",
        "8(%rax)\n",
        ")(\n",
        "\x01\x02\x7f\n",
        "ADD32rr \x01, \x02\n",
    };
    bad.push_back(std::string(1 << 16, 'a') + "\n");
    bad.push_back("NOP, " + std::string(1 << 16, '%') + "\n");
    for (const std::string &text : bad) {
        EXPECT_THROW((void)isa::parseBlock(text), std::runtime_error)
            << "accepted malformed input:\n"
            << text.substr(0, 80);
        expectParsersAgree(text);
    }
}

TEST(FrontendParser, LexBlockSlicesAreZeroCopy)
{
    const std::string text = "  ADD32rr %e bx , %ecx\n"
                             "# comment\n"
                             "\n"
                             "MOV64rm 8(%rsi), %rdi\n";
    std::vector<isa::Lexeme> lexemes;
    const size_t inst_lines = isa::lexBlock(text, lexemes);
    EXPECT_EQ(2u, inst_lines);
    ASSERT_EQ(6u, lexemes.size());

    // Every lexeme is a trimmed slice *into the input buffer* — the
    // zero-copy contract.
    for (const isa::Lexeme &lex : lexemes) {
        EXPECT_GE(lex.text.data(), text.data());
        EXPECT_LE(lex.text.data() + lex.text.size(),
                  text.data() + text.size());
        if (!lex.text.empty()) {
            EXPECT_FALSE(std::isspace(
                static_cast<unsigned char>(lex.text.front())));
            EXPECT_FALSE(std::isspace(
                static_cast<unsigned char>(lex.text.back())));
        }
    }
    EXPECT_EQ("ADD32rr", lexemes[0].text);
    EXPECT_TRUE(lexemes[0].mnemonic);
    EXPECT_EQ(0u, lexemes[0].line);
    EXPECT_EQ("%e bx", lexemes[1].text);
    EXPECT_TRUE(lexemes[1].spaced);
    EXPECT_EQ("%ecx", lexemes[2].text);
    EXPECT_FALSE(lexemes[2].spaced);
    EXPECT_EQ("MOV64rm", lexemes[3].text);
    EXPECT_EQ(3u, lexemes[3].line);
    EXPECT_EQ("8(%rsi)", lexemes[4].text);
    EXPECT_EQ("%rdi", lexemes[5].text);
    // Lexing never throws, even on garbage.
    EXPECT_EQ(1u, isa::lexBlock("BOGUS ,,$(\x01\n", lexemes));
}

// ------------------------------------------------------------------
// Interning

TEST(FrontendIntern, CanonicalFormsGetOneId)
{
    isa::Interner interner;
    const isa::BasicBlock a =
        isa::parseBlock("ADD32rr %ebx, %ecx\nNOP\n");
    const isa::BasicBlock b =
        isa::parseBlock("  ADD32rr\t%e bx ,%ecx \n # hi\n NOP \n");
    const isa::BasicBlock c = isa::parseBlock("NOP\n");

    bool known = false;
    const isa::BlockId id_a = interner.internBlock(a, known);
    ASSERT_NE(isa::invalidBlockId, id_a);
    EXPECT_FALSE(known);
    // The near-miss spelling resolves to the same id, and reports
    // the block as already known.
    EXPECT_EQ(id_a, interner.internBlock(b, known));
    EXPECT_TRUE(known);
    const isa::BlockId id_c = interner.internBlock(c, known);
    EXPECT_NE(id_a, id_c);
    EXPECT_FALSE(known);

    EXPECT_EQ(2u, interner.numBlocks());
    EXPECT_EQ(2u, interner.numInsts()); // ADD32rr.., NOP shared
    EXPECT_GT(interner.bytes(), 0u);

    // The per-instruction ids and token lanes reproduce the
    // canonical encoding exactly.
    const std::vector<isa::InstId> &ids = interner.instIds(id_a);
    ASSERT_EQ(a.size(), ids.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_NE(isa::invalidInstId, ids[i]);
        EXPECT_EQ(isa::theVocab().encode(a.insts[i]),
                  interner.tokens(ids[i]));
    }
    EXPECT_EQ(ids[1], interner.instIds(id_c)[0]); // shared NOP
}

TEST(FrontendIntern, DistinctCanonicalFormsGetDistinctIds)
{
    isa::Interner interner;
    std::vector<isa::BlockId> ids;
    for (const std::string &text : corpusTexts()) {
        const isa::BlockId id =
            interner.internBlock(isa::parseBlock(text));
        ASSERT_NE(isa::invalidBlockId, id);
        ids.push_back(id);
    }
    // The corpus is deduplicated, so every block is a distinct
    // canonical form and must get a distinct id.
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids.end(), std::adjacent_find(ids.begin(), ids.end()));
    EXPECT_EQ(corpusTexts().size(), interner.numBlocks());
}

TEST(FrontendIntern, FullTablesFallBackToInvalidIds)
{
    isa::Interner tiny(2, 1);
    const isa::Instruction add =
        isa::parseInstruction("ADD32rr %ebx, %ecx");
    const isa::Instruction nop = isa::parseInstruction("NOP");
    const isa::Instruction mul =
        isa::parseInstruction("IMUL64rr %rbx, %rcx");

    const isa::InstId id_add = tiny.internInst(add);
    const isa::InstId id_nop = tiny.internInst(nop);
    ASSERT_NE(isa::invalidInstId, id_add);
    ASSERT_NE(isa::invalidInstId, id_nop);
    // Third distinct instruction: table full, sentinel back.
    EXPECT_EQ(isa::invalidInstId, tiny.internInst(mul));
    // Lookups of already-interned forms still succeed at capacity.
    EXPECT_EQ(id_add, tiny.internInst(add));

    isa::BasicBlock one;
    one.insts.push_back(add);
    bool known = true;
    const isa::BlockId block_one = tiny.internBlock(one, known);
    ASSERT_NE(isa::invalidBlockId, block_one);
    EXPECT_FALSE(known);
    EXPECT_EQ(block_one, tiny.internBlock(one, known));
    EXPECT_TRUE(known);

    // Block table full: a new shape gets the sentinel...
    isa::BasicBlock two;
    two.insts.push_back(nop);
    EXPECT_EQ(isa::invalidBlockId, tiny.internBlock(two, known));
    // ...and a block containing an uninternable instruction can
    // never be interned.
    isa::BasicBlock three;
    three.insts.push_back(mul);
    EXPECT_EQ(isa::invalidBlockId, tiny.internBlock(three, known));
    EXPECT_EQ(1u, tiny.numBlocks());
    EXPECT_EQ(2u, tiny.numInsts());
}

TEST(FrontendIntern, ConcurrentInterningConverges)
{
    // The TSan target: many threads intern overlapping canonical
    // forms concurrently; every thread must see the same id per
    // form, and the tables must end up with exactly one entry per
    // form. (CI runs this suite under TSan; see .github/workflows.)
    std::vector<isa::BasicBlock> blocks;
    for (const std::string &text : corpusTexts())
        blocks.push_back(isa::parseBlock(text));

    isa::Interner interner;
    constexpr int kThreads = 4;
    std::vector<std::vector<isa::BlockId>> seen(
        kThreads, std::vector<isa::BlockId>(blocks.size()));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Stagger the iteration order so threads collide on
            // different blocks at different times.
            for (size_t i = 0; i < blocks.size(); ++i) {
                const size_t j = (i * 7 + size_t(t) * 13) %
                                 blocks.size();
                seen[size_t(t)][j] =
                    interner.internBlock(blocks[j]);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (size_t i = 0; i < blocks.size(); ++i) {
        ASSERT_NE(isa::invalidBlockId, seen[0][i]);
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(seen[0][i], seen[size_t(t)][i])
                << "threads disagree on block " << i;
    }
    EXPECT_EQ(blocks.size(), interner.numBlocks());
    // And the interned token lanes survived the race intact.
    for (size_t i = 0; i < blocks.size(); ++i) {
        const auto &ids = interner.instIds(seen[0][i]);
        ASSERT_EQ(blocks[i].size(), ids.size());
        for (size_t k = 0; k < ids.size(); ++k)
            EXPECT_EQ(isa::theVocab().encode(blocks[i].insts[k]),
                      interner.tokens(ids[k]));
    }
}

// ------------------------------------------------------------------
// Runtime matvec dispatch

TEST(FrontendDispatch, SelectionMatchesEnvironmentAndCpu)
{
    const char *force = std::getenv("DIFFTUNE_FORCE_SCALAR");
    const bool forced =
        force && *force && std::strcmp(force, "0") != 0;
    const nn::MatvecKernels &selected = nn::matvecKernels();
    ASSERT_NE(nullptr, selected.f64);
    ASSERT_NE(nullptr, selected.f32);
    if (forced)
        EXPECT_STREQ("scalar (forced)", nn::matvecPathName());
    else if (nn::matvecAvx2Kernels() && nn::cpuSupportsAvx2())
        EXPECT_STREQ("avx2", nn::matvecPathName());
    else
        EXPECT_STREQ("scalar", nn::matvecPathName());
}

TEST(FrontendDispatch, Avx2MatvecBitIdenticalToScalar)
{
    const nn::MatvecKernels *avx2 = nn::matvecAvx2Kernels();
    if (!avx2 || !nn::cpuSupportsAvx2())
        GTEST_SKIP() << "AVX2 kernels unavailable on this host";
    const nn::MatvecKernels &scalar = nn::matvecScalarKernels();

    std::mt19937_64 rng(0xb17e5);
    std::normal_distribution<double> dist(0.0, 3.0);
    // Cover every row/col remainder class of both kernels (f64
    // blocks 4 rows x 4 cols, f32 blocks 8x8), plus larger shapes.
    const int rows_set[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 23, 40};
    const int cols_set[] = {1, 2, 3, 4, 5, 7, 8, 9, 33, 64};
    for (int rows : rows_set) {
        for (int cols : cols_set) {
            std::vector<double> w(size_t(rows) * size_t(cols));
            std::vector<double> x(size_t(cols), 0.0);
            for (double &v : w)
                v = dist(rng);
            for (double &v : x)
                v = dist(rng);
            std::vector<float> wf(w.begin(), w.end());
            std::vector<float> xf(x.begin(), x.end());

            std::vector<double> ref(size_t(rows), 0.0);
            std::vector<double> got(size_t(rows), 0.0);
            scalar.f64(w.data(), x.data(), ref.data(), rows, cols);
            avx2->f64(w.data(), x.data(), got.data(), rows, cols);
            EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                                     ref.size() * sizeof(double)))
                << "f64 diverged at " << rows << "x" << cols;

            std::vector<float> reff(size_t(rows), 0.0f);
            std::vector<float> gotf(size_t(rows), 0.0f);
            scalar.f32(wf.data(), xf.data(), reff.data(), rows,
                       cols);
            avx2->f32(wf.data(), xf.data(), gotf.data(), rows,
                      cols);
            EXPECT_EQ(0, std::memcmp(reff.data(), gotf.data(),
                                     reff.size() * sizeof(float)))
                << "f32 diverged at " << rows << "x" << cols;
        }
    }
}

// ------------------------------------------------------------------
// Serving front end

surrogate::ModelConfig
tinyConfig()
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = 0;
    cfg.seed = 11;
    return cfg;
}

io::Checkpoint
ithemalCheckpoint()
{
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    return ckpt;
}

TEST(FrontendServe, InternAndEncodeCountersTrack)
{
    // Single worker, one stripe, tiny prediction/text LRUs but a
    // roomy pre-encoded cache: re-requesting an evicted block must
    // re-forward from its cached token lanes (encode hit), and a
    // respelled known block must resolve through the interner
    // (intern hit) into the prediction LRU.
    serve::AsyncConfig cfg;
    cfg.workers = 1;
    cfg.cacheStripes = 1;
    cfg.cacheCapacity = 4;
    cfg.encodedCapacity = 64;
    serve::AsyncEngine engine(ithemalCheckpoint(), cfg);
    const serve::ServeStats &stats = engine.stats();

    std::vector<std::string> texts(corpusTexts().begin(),
                                   corpusTexts().begin() + 8);
    ASSERT_EQ(8u, texts.size());
    std::vector<double> first;
    for (const std::string &text : texts)
        first.push_back(engine.predict(text));
    EXPECT_EQ(8u, stats.requests.load());
    EXPECT_EQ(8u, stats.misses.load());
    EXPECT_EQ(8u, stats.forwards.load());
    EXPECT_EQ(0u, stats.internHits.load());
    EXPECT_EQ(0u, stats.encodeHits.load());
    EXPECT_EQ(8u, engine.interner().numBlocks());

    // texts[0] fell out of every capacity-4 LRU, but its canonical
    // form is interned and its token lanes are still cached: the
    // re-request re-forwards without re-encoding.
    EXPECT_EQ(first[0], engine.predict(texts[0]));
    EXPECT_EQ(1u, stats.internHits.load());
    EXPECT_EQ(1u, stats.encodeHits.load());
    EXPECT_EQ(9u, stats.forwards.load());

    // texts[7] is still in the raw-text front cache: no parse, no
    // intern involved.
    EXPECT_EQ(first[7], engine.predict(texts[7]));
    EXPECT_EQ(1u, stats.textHits.load());
    EXPECT_EQ(1u, stats.internHits.load());

    // A respelling of texts[6] misses the front cache but resolves
    // through the interner straight to the cached prediction — no
    // forward pass.
    std::mt19937_64 rng(0x5e11);
    EXPECT_EQ(first[6], engine.predict(respell(texts[6], rng)));
    EXPECT_EQ(2u, stats.internHits.load());
    EXPECT_EQ(9u, stats.forwards.load());
    EXPECT_EQ(8u, engine.interner().numBlocks()); // nothing new

    // The PR-5 stats reconciliation still holds with the new
    // counters in play.
    EXPECT_EQ(stats.requests.load(),
              stats.textHits.load() + stats.textMisses.load());
    EXPECT_EQ(stats.requests.load(),
              stats.hits.load() + stats.misses.load());

    // And every cached/interned/encoded answer is bit-identical to
    // the uncached sequential reference.
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_EQ(engine.predictUncached(texts[i]), first[i]) << i;
}

TEST(FrontendServe, FullInternerStillServesCorrectly)
{
    // Interner exhaustion may only cost speed, never change an
    // answer or break the stats reconciliation: past the intern
    // bound, blocks are served without canonical-level caching.
    serve::AsyncConfig cfg;
    cfg.workers = 1;
    cfg.cacheStripes = 1;
    serve::AsyncConfig tiny_cfg = cfg;
    tiny_cfg.internCapacity = 4;
    serve::AsyncEngine roomy(ithemalCheckpoint(), cfg);
    serve::AsyncEngine cramped(ithemalCheckpoint(), tiny_cfg);
    // 16 distinct single-instruction canonical forms (so the first
    // four fit the cramped engine's instruction table too).
    const char *regs[] = {"%rax", "%rbx", "%rcx", "%rdx"};
    std::vector<std::string> texts;
    for (int k = 0; k < 16; ++k)
        texts.push_back("ADD64ri $" + std::to_string(k) + ", " +
                        regs[k % 4] + "\n");
    for (const std::string &text : texts)
        EXPECT_EQ(roomy.predict(text), cramped.predict(text));
    const serve::ServeStats &stats = cramped.stats();
    EXPECT_EQ(4u, cramped.interner().numBlocks());
    EXPECT_EQ(16u, stats.forwards.load());

    // An uninterned block re-arriving under a new spelling cannot
    // probe the canonical caches — it forwards again, yet still
    // answers bit-identically.
    std::mt19937_64 rng(0x1d1e);
    EXPECT_EQ(cramped.predictUncached(texts[10]),
              cramped.predict(respell(texts[10], rng)));
    EXPECT_EQ(17u, stats.forwards.load());
    // The same respelling of an *interned* block is a cache hit.
    EXPECT_EQ(cramped.predictUncached(texts[2]),
              cramped.predict(respell(texts[2], rng)));
    EXPECT_EQ(17u, stats.forwards.load());

    EXPECT_EQ(stats.requests.load(),
              stats.textHits.load() + stats.textMisses.load());
    EXPECT_EQ(stats.requests.load(),
              stats.hits.load() + stats.misses.load());
}

} // namespace
} // namespace difftune
