/**
 * @file
 * Cross-module integration tests: the calibration contract between
 * the default tables, the reference machine and the simulators, plus
 * end-to-end determinism of the data path.
 */

#include <gtest/gtest.h>

#include "analytical/iaca.hh"
#include "base/random.hh"
#include "bhive/dataset.hh"
#include "core/evaluate.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "params/sampling.hh"
#include "usim/usim.hh"

namespace difftune
{
namespace
{

const bhive::Corpus &
corpus()
{
    static const bhive::Corpus c = bhive::Corpus::generate(800, 2026);
    return c;
}

class UarchTest : public ::testing::TestWithParam<hw::Uarch>
{
};

TEST_P(UarchTest, DefaultErrorInPaperBand)
{
    // The expert defaults must land in the band the paper reports for
    // llvm-mca (25-42% at our scale), and must order blocks well.
    bhive::Dataset dataset(corpus(), GetParam());
    mca::XMca sim;
    auto eval = core::evaluate(sim, hw::defaultTable(GetParam()),
                               dataset, dataset.test());
    EXPECT_GT(eval.error, 0.10) << hw::uarchName(GetParam());
    EXPECT_LT(eval.error, 0.60) << hw::uarchName(GetParam());
    EXPECT_GT(eval.kendallTau, 0.55) << hw::uarchName(GetParam());
}

TEST_P(UarchTest, RandomTablesAreFarWorseThanDefaults)
{
    bhive::Dataset dataset(corpus(), GetParam());
    mca::XMca sim;
    auto def = hw::defaultTable(GetParam());
    auto def_eval =
        core::evaluate(sim, def, dataset, dataset.valid());
    Rng rng(9);
    auto random_table =
        params::SamplingDist::full().sample(rng, def);
    auto rnd_eval =
        core::evaluate(sim, random_table, dataset, dataset.valid());
    EXPECT_GT(rnd_eval.error, def_eval.error * 1.5);
}

TEST_P(UarchTest, UsimDefaultWorseThanXMca)
{
    // Appendix A shape: llvm_sim's default error (61.3%) is far above
    // llvm-mca's (25.0%).
    bhive::Dataset dataset(corpus(), GetParam());
    auto def = hw::defaultTable(GetParam());
    mca::XMca xmca;
    usim::USim usim_sim;
    auto mca_eval =
        core::evaluate(xmca, def, dataset, dataset.valid());
    auto usim_eval =
        core::evaluate(usim_sim, def, dataset, dataset.valid());
    EXPECT_GT(usim_eval.error, mca_eval.error);
}

INSTANTIATE_TEST_SUITE_P(
    AllUarches, UarchTest,
    ::testing::ValuesIn(hw::allUarches()),
    [](const auto &info) { return hw::uarchName(info.param); });

TEST(Integration, AnalyticalBeatsDefaultsOnIntel)
{
    // Table IV ordering: the analytical model (which knows about
    // idioms, elimination and forwarding) sits below the simulator
    // defaults in error.
    for (hw::Uarch uarch :
         {hw::Uarch::IvyBridge, hw::Uarch::Haswell,
          hw::Uarch::Skylake}) {
        bhive::Dataset dataset(corpus(), uarch);
        mca::XMca sim;
        auto def_eval = core::evaluate(
            sim, hw::defaultTable(uarch), dataset, dataset.test());
        analytical::XIaca iaca(uarch);
        std::vector<double> preds;
        for (const auto &entry : dataset.test())
            preds.push_back(iaca.timing(dataset.block(entry)));
        auto iaca_eval = core::evaluatePredictions(std::move(preds),
                                                   dataset.test());
        EXPECT_LT(iaca_eval.error, def_eval.error)
            << hw::uarchName(uarch);
    }
}

TEST(Integration, DatasetPipelineIsDeterministic)
{
    bhive::Dataset a(corpus(), hw::Uarch::Haswell);
    bhive::Dataset b(corpus(), hw::Uarch::Haswell);
    ASSERT_EQ(a.train().size(), b.train().size());
    for (size_t i = 0; i < a.train().size(); ++i) {
        EXPECT_EQ(a.train()[i].blockIdx, b.train()[i].blockIdx);
        EXPECT_DOUBLE_EQ(a.train()[i].timing, b.train()[i].timing);
    }
}

TEST(Integration, EvaluationIsDeterministicUnderParallelism)
{
    bhive::Dataset dataset(corpus(), hw::Uarch::Skylake);
    mca::XMca sim;
    auto def = hw::defaultTable(hw::Uarch::Skylake);
    auto a = core::evaluate(sim, def, dataset, dataset.test());
    auto b = core::evaluate(sim, def, dataset, dataset.test());
    EXPECT_EQ(a.predictions, b.predictions);
    EXPECT_DOUBLE_EQ(a.error, b.error);
}

TEST(Integration, ZenDefaultsWorstOfTheFour)
{
    // The paper's Zen 2 default error (34.9%, via znver1 tables) is
    // the highest of the four; our mismatched AMD documentation
    // reproduces that ordering against the Intel average.
    mca::XMca sim;
    double intel_total = 0.0;
    for (hw::Uarch uarch :
         {hw::Uarch::IvyBridge, hw::Uarch::Haswell,
          hw::Uarch::Skylake}) {
        bhive::Dataset dataset(corpus(), uarch);
        intel_total += core::evaluate(sim, hw::defaultTable(uarch),
                                      dataset, dataset.test())
                           .error;
    }
    bhive::Dataset zen(corpus(), hw::Uarch::Zen2);
    const double zen_err =
        core::evaluate(sim, hw::defaultTable(hw::Uarch::Zen2), zen,
                       zen.test())
            .error;
    EXPECT_GT(zen_err, intel_total / 3.0);
}

} // namespace
} // namespace difftune
