/**
 * @file
 * Tests for the traffic lab (lab/): trace generation determinism
 * and the serialized round trip, Zipf popularity shape, respelling
 * canonicalization, cache-policy property tests (capacity bounds,
 * counter reconciliation, LRU-behind-interface equivalence with the
 * legacy serve::LruCache, TinyLFU scan resistance), the CacheSim
 * sweep harness, and — the acceptance assertion of the lab PR —
 * bit-exact engine replay for every (policy, dispatcher-pool size)
 * combination, plus pool behavior under concurrent submission and
 * registry hot-swap (the TSan target).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include "base/random.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "io/snapshot.hh"
#include "isa/parse.hh"
#include "lab/cache_sim.hh"
#include "lab/policy.hh"
#include "lab/policy_cache.hh"
#include "lab/trace.hh"
#include "serve/engine.hh"
#include "serve/lru_cache.hh"
#include "serve/registry.hh"

namespace difftune::lab
{
namespace
{

surrogate::ModelConfig
tinyConfig()
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = 0;
    cfg.seed = 5;
    return cfg;
}

io::Checkpoint
tinyCheckpoint()
{
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    return ckpt;
}

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/** A small trace config the engine tests can replay quickly. */
TraceConfig
smallTrace(uint64_t seed)
{
    TraceConfig cfg;
    cfg.seed = seed;
    cfg.corpusSeed = 11;
    cfg.corpusTarget = 24;
    cfg.requests = 160;
    cfg.zipfSkew = 1.1;
    cfg.respellProb = 0.3;
    return cfg;
}

// ------------------------------------------------------------ traces

TEST(TraceWorkload, SameSeedIsByteIdentical)
{
    const TraceConfig cfg = smallTrace(42);
    const std::string a = TraceWorkload::generate(cfg).serialize();
    const std::string b = TraceWorkload::generate(cfg).serialize();
    EXPECT_EQ(a, b);

    TraceConfig other = cfg;
    other.seed = 43;
    EXPECT_NE(a, TraceWorkload::generate(other).serialize());
}

TEST(TraceWorkload, SerializeRoundTripsBitExact)
{
    TraceConfig cfg = smallTrace(7);
    cfg.models = 3;
    cfg.modelWeights = {0.6, 0.3, 0.1};
    const TraceWorkload trace = TraceWorkload::generate(cfg);
    const std::string bytes = trace.serialize();
    const TraceWorkload back = TraceWorkload::deserialize(bytes);
    EXPECT_EQ(back.serialize(), bytes);

    ASSERT_EQ(back.requests().size(), trace.requests().size());
    for (size_t i = 0; i < trace.requests().size(); ++i) {
        EXPECT_EQ(back.requests()[i].block, trace.requests()[i].block);
        EXPECT_EQ(back.requests()[i].model, trace.requests()[i].model);
        EXPECT_EQ(back.requests()[i].respell,
                  trace.requests()[i].respell);
        EXPECT_EQ(back.requests()[i].arrivalNs,
                  trace.requests()[i].arrivalNs);
    }
    // The corpus regenerates from its recorded seed, so the
    // materialized request texts match too.
    EXPECT_EQ(back.requestTexts(), trace.requestTexts());
}

TEST(TraceWorkload, SaveLoadRoundTrip)
{
    const TraceWorkload trace =
        TraceWorkload::generate(smallTrace(9));
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "difftune_test_trace.bin")
            .string();
    trace.save(path);
    const TraceWorkload back = TraceWorkload::load(path);
    std::filesystem::remove(path);
    EXPECT_EQ(back.serialize(), trace.serialize());
}

TEST(TraceWorkload, ZipfSkewShapesPopularity)
{
    TraceConfig cfg;
    cfg.seed = 3;
    cfg.corpusTarget = 64;
    cfg.requests = 20000;
    cfg.zipfSkew = 1.1;
    cfg.respellProb = 0.0;
    const TraceWorkload trace = TraceWorkload::generate(cfg);
    const size_t n = trace.corpusTexts().size();
    ASSERT_GT(n, 8u);

    std::vector<uint64_t> counts(n, 0);
    for (const TraceRequest &req : trace.requests()) {
        ASSERT_LT(req.block, n);
        ++counts[req.block];
    }
    // Empirical rank-0 share vs the theoretical 1 / (H * 1^s).
    double harmonic = 0.0;
    for (size_t r = 0; r < n; ++r)
        harmonic += std::exp(-cfg.zipfSkew * std::log(double(r + 1)));
    const double expected0 = 1.0 / harmonic;
    const double actual0 =
        double(counts[0]) / double(cfg.requests);
    EXPECT_NEAR(actual0, expected0, 0.25 * expected0);
    // Monotone-in-expectation head: the hottest rank clearly beats
    // the mid-pack and the tail.
    EXPECT_GT(counts[0], counts[8] * 2);
    EXPECT_GT(counts[0], counts[n - 1] * 4);
}

TEST(TraceWorkload, ArrivalsAreMonotone)
{
    const TraceWorkload trace =
        TraceWorkload::generate(smallTrace(21));
    uint64_t last = 0;
    for (const TraceRequest &req : trace.requests()) {
        EXPECT_GE(req.arrivalNs, last);
        last = req.arrivalNs;
    }
    EXPECT_GT(last, 0u);
}

TEST(TraceWorkload, ModelMixStaysInRange)
{
    TraceConfig cfg = smallTrace(5);
    cfg.models = 3;
    cfg.modelWeights = {0.7, 0.2, 0.1};
    cfg.requests = 3000;
    const TraceWorkload trace = TraceWorkload::generate(cfg);
    uint64_t per_model[3] = {0, 0, 0};
    for (const TraceRequest &req : trace.requests()) {
        ASSERT_LT(req.model, cfg.models);
        ++per_model[req.model];
    }
    // The weights order the mix.
    EXPECT_GT(per_model[0], per_model[1]);
    EXPECT_GT(per_model[1], per_model[2]);
}

TEST(TraceWorkload, RespellingPreservesCanonicalForm)
{
    const TraceWorkload trace =
        TraceWorkload::generate(smallTrace(13));
    size_t respelled = 0;
    for (size_t i = 0; i < trace.requests().size(); ++i) {
        const TraceRequest &req = trace.requests()[i];
        const std::string &canonical =
            trace.corpusTexts()[req.block];
        const std::string text = trace.requestText(i);
        if (req.respell == 0) {
            EXPECT_EQ(text, canonical);
            continue;
        }
        ++respelled;
        EXPECT_NE(text, canonical);
        // The near-miss parses back to the same canonical block.
        EXPECT_EQ(isa::toString(isa::parseBlock(text)), canonical);
    }
    // respellProb = 0.3 over 160 requests: expect a healthy sample.
    EXPECT_GT(respelled, 20u);
}

// ----------------------------------------------------------- policies

TEST(CachePolicy, RegistryKnowsAllPolicies)
{
    ASSERT_EQ(policyNames().size(), 3u);
    for (const std::string &name : policyNames()) {
        const PolicyFactory factory = policyFactory(name);
        const std::unique_ptr<CachePolicy> policy = factory(8);
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(CachePolicy, PropertyInvariantsHoldForEveryPolicy)
{
    // Seed-parameterized property run: for every policy, a random
    // mixed get/put stream must (a) never exceed capacity, (b) only
    // ever hit values actually put for that key, and (c) leave the
    // counters reconciled.
    constexpr size_t kCapacity = 32;
    for (const std::string &name : policyNames()) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            PolicyCache<int, int> cache(
                kCapacity, policyFactory(name)(kCapacity));
            Rng rng(seed);
            uint64_t gets = 0;
            for (int i = 0; i < 4000; ++i) {
                const int key = int(rng.uniformInt(0, 63));
                if (rng.bernoulli(0.5)) {
                    ++gets;
                    if (const int *hit = cache.get(key)) {
                        // Hit implies a prior admitted put of this
                        // exact key (values are key-derived).
                        EXPECT_EQ(*hit, key * 3 + 1)
                            << name << " seed " << seed;
                    }
                } else {
                    cache.put(key, key * 3 + 1);
                }
                ASSERT_LE(cache.size(), kCapacity) << name;
            }
            const CacheCounters &c = cache.counters();
            EXPECT_EQ(c.hits + c.misses, gets) << name;
            EXPECT_EQ(c.insertions,
                      c.evictions + cache.size())
                << name;
            if (name != "tinylfu") {
                EXPECT_EQ(c.rejections, 0u) << name;
            }
        }
    }
}

TEST(CachePolicy, LruPolicyMatchesLegacyLruCache)
{
    // The extraction proof: the interface LRU must make the byte-
    // identical hit/miss/eviction decisions the legacy intrusive
    // serve::LruCache makes on the same operation sequence.
    for (uint64_t seed : {11u, 22u, 33u}) {
        constexpr size_t kCapacity = 16;
        serve::LruCache<int, int> legacy(kCapacity);
        PolicyCache<int, int> cache(kCapacity,
                                    makeLruPolicy(kCapacity));
        Rng rng(seed);
        for (int i = 0; i < 3000; ++i) {
            const int key = int(rng.uniformInt(0, 47));
            if (rng.bernoulli(0.5)) {
                const int *a = legacy.get(key);
                const int *b = cache.get(key);
                ASSERT_EQ(a == nullptr, b == nullptr)
                    << "step " << i << " seed " << seed;
                if (a) {
                    ASSERT_EQ(*a, *b);
                }
            } else {
                const int value = i;
                legacy.put(key, value);
                ASSERT_TRUE(cache.put(key, value));
            }
            ASSERT_EQ(legacy.size(), cache.size());
        }
    }
}

TEST(CachePolicy, TinyLfuRejectsScansAndKeepsHotSet)
{
    constexpr size_t kCapacity = 16;
    PolicyCache<int, int> cache(kCapacity,
                                makeTinyLfuPolicy(kCapacity));
    // Warm a hot set that exactly fills the cache and builds sketch
    // frequency well above any one-hit wonder.
    for (int round = 0; round < 8; ++round)
        for (int key = 0; key < int(kCapacity); ++key)
            if (!cache.get(key))
                cache.put(key, key);
    // A long scan interleaved with live hot traffic (that is what
    // scan resistance means — the sketch ages every 8 x capacity
    // records, so a hot set that stops arriving legitimately decays
    // away): the doorkeeper absorbs each scan key's first sighting,
    // so scan keys estimate at most 1 and lose the admission duel
    // against the still-hot residents.
    uint64_t admitted = 0;
    int hot = 0;
    for (int key = 1000; key < 2000; ++key) {
        if (!cache.get(hot))
            cache.put(hot, hot);
        hot = (hot + 1) % int(kCapacity);
        EXPECT_EQ(cache.get(key), nullptr);
        if (cache.put(key, key))
            ++admitted;
    }
    EXPECT_LT(admitted, 50u);
    EXPECT_GT(cache.counters().rejections, 950u);
    // Nearly all of the hot set survived the scan.
    size_t resident = 0;
    for (int key = 0; key < int(kCapacity); ++key)
        if (cache.get(key) != nullptr)
            ++resident;
    EXPECT_GE(resident, kCapacity - 4);
}

TEST(CachePolicy, SegmentedLruProtectsRepeatedKeysFromScans)
{
    constexpr size_t kCapacity = 16;
    PolicyCache<int, int> cache(
        kCapacity, makeSegmentedLruPolicy(kCapacity, 0.5));
    // Promote a small working set into the protected segment (two
    // hits each), then scan. The scan churns probation but may not
    // evict the protected keys.
    for (int round = 0; round < 3; ++round)
        for (int key = 0; key < 6; ++key)
            if (!cache.get(key))
                cache.put(key, key);
    for (int key = 500; key < 600; ++key) {
        cache.get(key);
        cache.put(key, key);
    }
    for (int key = 0; key < 6; ++key)
        EXPECT_NE(cache.get(key), nullptr) << "protected " << key;
}

// ----------------------------------------------------------- CacheSim

TEST(CacheSim, SweepCoversAllPoliciesAndReconciles)
{
    TraceConfig cfg;
    cfg.seed = 17;
    cfg.corpusTarget = 64;
    cfg.requests = 4000;
    cfg.zipfSkew = 1.1;
    const TraceWorkload trace = TraceWorkload::generate(cfg);
    obs::MetricRegistry registry;
    const std::vector<SimResult> results =
        sweepPolicies(trace, 16, registry);
    ASSERT_EQ(results.size(), policyNames().size());
    for (size_t i = 0; i < results.size(); ++i) {
        const SimResult &r = results[i];
        EXPECT_EQ(r.policy, policyNames()[i]);
        EXPECT_EQ(r.requests, uint64_t(cfg.requests));
        EXPECT_EQ(r.counters.hits + r.counters.misses, r.requests);
        EXPECT_GE(r.hitRate, 0.0);
        EXPECT_LE(r.hitRate, 1.0);
        EXPECT_GT(r.counters.hits, 0u);
        EXPECT_FALSE(r.row().empty());
    }
}

TEST(CacheSim, SmartPoliciesBeatLruOnSkewedTraffic)
{
    // The bench_lab --smoke floor, asserted here deterministically:
    // on heavily Zipfian traffic with a cache much smaller than the
    // corpus, segmented LRU and TinyLFU admission must match or beat
    // plain LRU's hit-rate.
    TraceConfig cfg;
    cfg.seed = 29;
    cfg.corpusTarget = 256;
    cfg.requests = 20000;
    cfg.zipfSkew = 1.0;
    const TraceWorkload trace = TraceWorkload::generate(cfg);
    obs::MetricRegistry registry;
    const std::vector<SimResult> results =
        sweepPolicies(trace, 32, registry);
    ASSERT_EQ(results.size(), 3u);
    const double lru = results[0].hitRate;
    EXPECT_GE(results[1].hitRate, lru) << "slru regressed vs lru";
    EXPECT_GE(results[2].hitRate, lru) << "tinylfu regressed vs lru";
}

// ------------------------------------------------------ engine replay

TEST(LabReplay, BitStableForEveryPolicyAndPoolSize)
{
    // The lab acceptance assertion: replaying one trace through
    // AsyncEngine must produce bit-identical kF64 predictions for
    // every cache policy x dispatcher-pool size combination — the
    // policy and the pool may only ever change speed, never results.
    // A deliberately tiny cache forces eviction/admission churn.
    const TraceWorkload trace = TraceWorkload::generate(smallTrace(1));
    const std::vector<std::string> texts = trace.requestTexts();

    serve::PredictionEngine reference(tinyCheckpoint());
    std::vector<double> expected;
    expected.reserve(texts.size());
    for (const std::string &text : texts)
        expected.push_back(reference.predict(text));

    for (const std::string &policy : policyNames()) {
        for (int pool : {1, 2, 4}) {
            serve::AsyncConfig cfg;
            cfg.dispatchers = pool;
            cfg.cachePolicy = policyFactory(policy);
            cfg.cacheCapacity = 8;
            serve::AsyncEngine engine(tinyCheckpoint(), cfg);
            std::vector<std::future<double>> futures =
                engine.submitAll(texts);
            ASSERT_EQ(futures.size(), expected.size());
            for (size_t i = 0; i < futures.size(); ++i)
                ASSERT_TRUE(
                    sameBits(futures[i].get(), expected[i]))
                    << policy << " pool " << pool << " req " << i;
            // Replay reconciles: every request counted exactly once.
            const serve::ServeStats &stats = engine.stats();
            EXPECT_EQ(stats.requests.load(), texts.size());
            EXPECT_EQ(stats.hits.load() + stats.misses.load(),
                      stats.requests.load());
        }
    }
}

TEST(LabReplay, PoolServesConcurrentClientsBitExact)
{
    // Concurrent clients x dispatcher pool: any interleaving, any
    // stripe assignment, any steal must still produce the reference
    // bits. (This is the pool's TSan workout too.)
    const TraceWorkload trace = TraceWorkload::generate(smallTrace(2));
    const std::vector<std::string> texts = trace.requestTexts();
    serve::PredictionEngine reference(tinyCheckpoint());
    std::vector<double> expected;
    expected.reserve(texts.size());
    for (const std::string &text : texts)
        expected.push_back(reference.predict(text));

    serve::AsyncConfig cfg;
    cfg.dispatchers = 4;
    cfg.cacheCapacity = 16;
    serve::AsyncEngine engine(tinyCheckpoint(), cfg);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < texts.size(); ++i) {
                const size_t at =
                    (i * 13 + size_t(t) * 7) % texts.size();
                if (!sameBits(engine.submit(texts[at]).get(),
                              expected[at]))
                    ++mismatches;
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(LabReplay, PoolSurvivesRegistryHotSwapUnderLoad)
{
    // Pool-enabled engines behind the registry: clients hammer
    // submit through acquire() while another thread hot-swaps the
    // model. Every answer must be bit-exact against the reference
    // (both generations serve the same checkpoint) and no request
    // may be dropped — the TSan job replays this under
    // ThreadSanitizer.
    const TraceWorkload trace = TraceWorkload::generate(smallTrace(3));
    const std::vector<std::string> texts = trace.requestTexts();
    serve::PredictionEngine reference(tinyCheckpoint());
    std::vector<double> expected;
    expected.reserve(texts.size());
    for (const std::string &text : texts)
        expected.push_back(reference.predict(text));

    obs::MetricRegistry metrics;
    serve::RegistryConfig rcfg;
    rcfg.engine.dispatchers = 2;
    rcfg.engine.cacheCapacity = 16;
    rcfg.registry = &metrics;
    rcfg.metricRoot = "labswap";
    serve::ModelRegistry registry(rcfg);
    registry.load("m", io::makeModelSnapshot(tinyCheckpoint()));

    std::atomic<int> mismatches{0};
    std::atomic<bool> done{false};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            for (int round = 0; round < 2; ++round)
                for (size_t i = 0; i < texts.size(); ++i) {
                    const size_t at =
                        (i * 5 + size_t(t) * 11) % texts.size();
                    const std::shared_ptr<serve::AsyncEngine>
                        engine = registry.acquire("m");
                    try {
                        if (!sameBits(
                                engine->submit(texts[at]).get(),
                                expected[at]))
                            ++mismatches;
                    } catch (const serve::EngineStoppedError &) {
                        // A request racing the swap's drain: retry
                        // on the fresh generation.
                        if (!sameBits(registry.acquire("m")
                                          ->submit(texts[at])
                                          .get(),
                                      expected[at]))
                            ++mismatches;
                    }
                }
        });
    }
    std::thread swapper([&] {
        while (!done.load()) {
            registry.load("m",
                          io::makeModelSnapshot(tinyCheckpoint()));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    });
    for (std::thread &client : clients)
        client.join();
    done.store(true);
    swapper.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_GE(registry.swaps(), 1u);
}

} // namespace
} // namespace difftune::lab
