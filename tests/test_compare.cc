/**
 * @file
 * Tests for the difftune compare harness (src/compare/): .preds
 * artifact round trips and strict corruption rejection (mirroring
 * the test_io container patterns under the artifact's own magic),
 * classification boundaries (inclusive tolerance, NaN/Inf, the
 * missing-block asymmetry in both directions), per-opcode and
 * per-length breakdown arithmetic, the JSON report golden, snapshot
 * consistency against the serving engine (including a live-daemon
 * loopback compare), and the committed reference artifact
 * (tests/golden/compare_reference.preds) staying bit-exact against
 * a checkpoint rebuilt at HEAD.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "base/random.hh"
#include "compare/compare.hh"
#include "compare/perturb.hh"
#include "compare/preds.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "io/checkpoint.hh"
#include "isa/tokens.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"
#include "surrogate/model.hh"

#ifndef DIFFTUNE_GOLDEN_DIR
#define DIFFTUNE_GOLDEN_DIR "tests/golden"
#endif

namespace difftune::compare
{
namespace
{

constexpr const char *referencePath =
    DIFFTUNE_GOLDEN_DIR "/compare_reference.preds";

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

const double specialDoubles[] = {
    0.0,
    -0.0,
    1.0,
    -1.0 / 3.0,
    1e-300,
    std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::max(),
};

class TempFile
{
  public:
    explicit TempFile(const char *name)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("difftune_compare_") + name))
                    .string())
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Artifact over @p texts with @p values, digest included. */
PredsArtifact
makeArtifact(const std::vector<std::string> &texts,
             const std::vector<double> &values,
             const std::string &source = "test")
{
    PredsArtifact artifact;
    artifact.engine.source = source;
    artifact.engine.precision = "f64";
    artifact.engine.kernel = "scalar";
    artifact.engine.workers = 1;
    artifact.corpusDigest = corpusDigest(texts);
    for (size_t i = 0; i < texts.size(); ++i) {
        BlockPreds block;
        block.text = texts[i];
        block.bits = bits(values[i]);
        artifact.blocks.push_back(std::move(block));
    }
    return artifact;
}

/** The save-tiny checkpoint (examples/difftuned.cpp cmdSaveTiny):
 *  untrained, deterministic per seed. */
void
writeTinyCheckpoint(const std::string &path, uint64_t seed)
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = norm.paramDim();
    cfg.seed = seed;
    const surrogate::Model model(cfg, isa::theVocab().size());
    const params::ParamTable table =
        hw::defaultTable(hw::Uarch::Haswell);
    io::saveCheckpoint(path, &model, &dist, &table);
}

// ---- Artifact codec.

TEST(Artifact, RoundTripBitExactIncludingSpecials)
{
    std::vector<std::string> texts;
    std::vector<double> values;
    for (size_t i = 0; i < std::size(specialDoubles); ++i) {
        texts.push_back("NOP # block " + std::to_string(i) + "\n");
        values.push_back(specialDoubles[i]);
    }
    const PredsArtifact original = makeArtifact(texts, values);
    const PredsArtifact restored =
        decodePreds(encodePreds(original));

    EXPECT_EQ(restored.engine.source, "test");
    EXPECT_EQ(restored.engine.precision, "f64");
    EXPECT_EQ(restored.engine.kernel, "scalar");
    EXPECT_EQ(restored.engine.workers, 1);
    EXPECT_EQ(restored.corpusDigest, original.corpusDigest);
    ASSERT_EQ(restored.blocks.size(), original.blocks.size());
    for (size_t i = 0; i < restored.blocks.size(); ++i) {
        EXPECT_EQ(restored.blocks[i].text, original.blocks[i].text);
        EXPECT_EQ(restored.blocks[i].bits, original.blocks[i].bits)
            << "value " << i << " did not round-trip bit-exactly";
    }
}

TEST(Artifact, FileRoundTrip)
{
    TempFile file("roundtrip.preds");
    const PredsArtifact original =
        makeArtifact({"NOP\n"}, {1.5}, "file-test");
    savePreds(file.path(), original);
    const PredsArtifact restored = loadPreds(file.path());
    ASSERT_EQ(restored.blocks.size(), 1u);
    EXPECT_EQ(restored.blocks[0].bits, bits(1.5));
    EXPECT_EQ(restored.engine.source, "file-test");

    EXPECT_THROW(loadPreds("/nonexistent/missing.preds"),
                 std::runtime_error);
}

TEST(Artifact, TruncationRejectedEverywhere)
{
    const std::string bytes =
        encodePreds(makeArtifact({"NOP\n"}, {2.0}));
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_THROW(decodePreds(bytes.substr(0, cut)),
                     std::runtime_error)
            << "prefix of " << cut << " bytes was accepted";
    }
    EXPECT_NO_THROW(decodePreds(bytes));
}

TEST(Artifact, CorruptPayloadByteRejected)
{
    std::string bytes = encodePreds(makeArtifact({"NOP\n"}, {2.0}));
    bytes[bytes.size() - 10] ^= 0x01; // inside the last payload
    EXPECT_THROW(decodePreds(bytes), std::runtime_error);
}

TEST(Artifact, ContainerKindsDoNotCrossLoad)
{
    // A checkpoint can never half-load as a .preds artifact...
    TempFile ckpt("kind.ckpt");
    writeTinyCheckpoint(ckpt.path(), 5);
    EXPECT_THROW(loadPreds(ckpt.path()), std::runtime_error);
    // ...and a .preds artifact is not a checkpoint.
    const std::string preds =
        encodePreds(makeArtifact({"NOP\n"}, {1.0}));
    EXPECT_THROW(io::ChunkReader{preds}, std::runtime_error);
}

TEST(Artifact, WrongVersionRejected)
{
    std::string bytes = encodePreds(makeArtifact({"NOP\n"}, {1.0}));
    bytes[8] = char(predsVersion + 1);
    EXPECT_THROW(decodePreds(bytes), std::runtime_error);
}

TEST(Artifact, DuplicateBlockTextRejected)
{
    PredsArtifact artifact =
        makeArtifact({"NOP\n", "ADD32rr %ebx, %ecx\n"}, {1.0, 2.0});
    artifact.blocks[1].text = artifact.blocks[0].text;
    EXPECT_THROW(decodePreds(encodePreds(artifact)),
                 std::runtime_error);
}

TEST(Artifact, BlockCountMismatchRejected)
{
    // Hand-build a container whose metadata declares two blocks but
    // whose block chunk carries one.
    io::ByteWriter meta;
    meta.u64(123);         // digest
    meta.u64(2);           // declared count (wrong)
    meta.str("src");
    meta.str("f64");
    meta.str("scalar");
    meta.i32(1);
    io::ByteWriter blocks;
    blocks.u64(1);
    blocks.str("NOP\n");
    blocks.u64(bits(1.0));
    io::ChunkWriter writer(predsContainer);
    writer.add(tagPredsMeta, meta.take());
    writer.add(tagPredsBlocks, blocks.take());
    EXPECT_THROW(decodePreds(writer.serialize()),
                 std::runtime_error);
}

// ---- Classification.

TEST(Classify, ToleranceBoundaryIsInclusive)
{
    // a=1.0, b=0.75: rel = 0.25/1.0 exactly.
    double rel = -1.0;
    EXPECT_EQ(classifyPair(bits(1.0), bits(0.75), 0.25, &rel),
              DiffClass::kWithinTolerance);
    EXPECT_EQ(rel, 0.25);
    EXPECT_EQ(classifyPair(bits(1.0), bits(0.75), 0.2499),
              DiffClass::kDiverged);
    EXPECT_EQ(classifyPair(bits(1.0), bits(1.0), 0.0),
              DiffClass::kBitExact);
}

TEST(Classify, RelativeErrorIsSymmetric)
{
    double ab = 0.0, ba = 0.0;
    const DiffClass cab =
        classifyPair(bits(2.0), bits(3.0), 1e-5, &ab);
    const DiffClass cba =
        classifyPair(bits(3.0), bits(2.0), 1e-5, &ba);
    EXPECT_EQ(cab, DiffClass::kDiverged);
    EXPECT_EQ(cab, cba);
    EXPECT_EQ(bits(ab), bits(ba)) << "rel error must not depend on "
                                     "argument order";
}

TEST(Classify, NonFiniteNeverWithinTolerance)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // Identical bits are bit-exact even for NaN/Inf.
    EXPECT_EQ(classifyPair(bits(nan), bits(nan), 1e-5),
              DiffClass::kBitExact);
    EXPECT_EQ(classifyPair(bits(inf), bits(inf), 1e-5),
              DiffClass::kBitExact);
    // Everything else involving a non-finite value diverges, no
    // matter how generous the tolerance.
    EXPECT_EQ(classifyPair(bits(nan), bits(1.0), 1e100),
              DiffClass::kDiverged);
    EXPECT_EQ(classifyPair(bits(1.0), bits(nan), 1e100),
              DiffClass::kDiverged);
    EXPECT_EQ(classifyPair(bits(inf), bits(-inf), 1e100),
              DiffClass::kDiverged);
    EXPECT_EQ(classifyPair(bits(inf), bits(1e308), 1e100),
              DiffClass::kDiverged);
}

TEST(Classify, SignedZerosAreWithinTolerance)
{
    // +0.0 and -0.0 differ in bits but not in value: rel error 0.
    double rel = -1.0;
    EXPECT_EQ(classifyPair(bits(0.0), bits(-0.0), 0.0, &rel),
              DiffClass::kWithinTolerance);
    EXPECT_EQ(rel, 0.0);
}

// ---- compare() semantics.

TEST(Compare, MissingBlockAsymmetryBothDirections)
{
    const PredsArtifact big = makeArtifact(
        {"NOP\n", "ADD32rr %ebx, %ecx\n"}, {1.0, 2.0}, "big");
    const PredsArtifact small =
        makeArtifact({"NOP\n"}, {1.0}, "small");

    const CompareReport ab = compare(big, small);
    EXPECT_EQ(ab.counts[DiffClass::kBitExact], 1u);
    EXPECT_EQ(ab.counts[DiffClass::kOnlyInA], 1u);
    EXPECT_EQ(ab.counts[DiffClass::kOnlyInB], 0u);
    EXPECT_EQ(ab.exitCode(), 2);
    EXPECT_FALSE(ab.digestMatch);

    const CompareReport ba = compare(small, big);
    EXPECT_EQ(ba.counts[DiffClass::kBitExact], 1u);
    EXPECT_EQ(ba.counts[DiffClass::kOnlyInA], 0u);
    EXPECT_EQ(ba.counts[DiffClass::kOnlyInB], 1u);
    EXPECT_EQ(ba.exitCode(), 2);

    // The missing block is reported with its index in the artifact
    // that has it.
    ASSERT_EQ(ba.blocks.size(), 2u);
    EXPECT_EQ(ba.blocks[1].cls, DiffClass::kOnlyInB);
    EXPECT_EQ(ba.blocks[1].indexA, -1);
    EXPECT_EQ(ba.blocks[1].indexB, 1);
}

TEST(Compare, ExitCodeContract)
{
    const std::vector<std::string> texts = {"NOP\n"};
    const PredsArtifact one = makeArtifact(texts, {1.0});
    EXPECT_EQ(compare(one, one).exitCode(), 0);

    // 1 + 1e-7 is within the 1e-5 gate but not bit-exact.
    const PredsArtifact close = makeArtifact(texts, {1.0 + 1e-7});
    EXPECT_EQ(compare(one, close).exitCode(), 1);

    const PredsArtifact far = makeArtifact(texts, {2.0});
    EXPECT_EQ(compare(one, far).exitCode(), 2);

    CompareConfig loose;
    loose.tolerance = 10.0;
    EXPECT_EQ(compare(one, far, loose).exitCode(), 1);
}

TEST(Compare, PerOpcodeBreakdownArithmetic)
{
    // Three blocks: NOP-only (bit-exact), ADD-only (diverged), and
    // a NOP+ADD block (within tolerance). Each distinct opcode of a
    // block is charged the block's class once.
    const std::vector<std::string> texts = {
        "NOP\n",
        "ADD32rr %ebx, %ecx\n",
        "NOP\nADD32rr %ebx, %ecx\nNOP\n",
    };
    const PredsArtifact a = makeArtifact(texts, {1.0, 1.0, 1.0});
    const PredsArtifact b =
        makeArtifact(texts, {1.0, 2.0, 1.0 + 1e-7});
    const CompareReport report = compare(a, b);

    ASSERT_EQ(report.byOpcode.size(), 2u);
    const ClassCounts &nop = report.byOpcode.at("NOP");
    EXPECT_EQ(nop[DiffClass::kBitExact], 1u);
    EXPECT_EQ(nop[DiffClass::kWithinTolerance], 1u);
    EXPECT_EQ(nop[DiffClass::kDiverged], 0u);
    EXPECT_EQ(nop.total(), 2u);
    const ClassCounts &add = report.byOpcode.at("ADD32rr");
    EXPECT_EQ(add[DiffClass::kBitExact], 0u);
    EXPECT_EQ(add[DiffClass::kWithinTolerance], 1u);
    EXPECT_EQ(add[DiffClass::kDiverged], 1u);
    EXPECT_EQ(add.total(), 2u);

    // Block-level counts reconcile with the overall classification.
    EXPECT_EQ(report.counts[DiffClass::kBitExact], 1u);
    EXPECT_EQ(report.counts[DiffClass::kWithinTolerance], 1u);
    EXPECT_EQ(report.counts[DiffClass::kDiverged], 1u);
    EXPECT_EQ(report.counts.total(), texts.size());
}

TEST(Compare, PerLengthBreakdown)
{
    const std::vector<std::string> texts = {
        "NOP\n",
        "ADD32rr %ebx, %ecx\n",
        "NOP\nADD32rr %ebx, %ecx\nNOP\n",
    };
    const PredsArtifact a = makeArtifact(texts, {1.0, 1.0, 1.0});
    const PredsArtifact b = makeArtifact(texts, {1.0, 2.0, 1.0});
    const CompareReport report = compare(a, b);

    ASSERT_EQ(report.byLength.size(), 2u);
    const ClassCounts &len1 = report.byLength.at(1);
    EXPECT_EQ(len1[DiffClass::kBitExact], 1u);
    EXPECT_EQ(len1[DiffClass::kDiverged], 1u);
    const ClassCounts &len3 = report.byLength.at(3);
    EXPECT_EQ(len3[DiffClass::kBitExact], 1u);
    EXPECT_EQ(len3.total(), 1u);
}

// ---- Reports.

TEST(Report, JsonGolden)
{
    const std::vector<std::string> texts = {
        "NOP\n", "ADD32rr %ebx, %ecx\n"};
    const PredsArtifact a = makeArtifact(texts, {1.0, 2.0}, "a");
    const PredsArtifact b = makeArtifact(texts, {1.0, 3.0}, "b");
    const std::string json = renderJson(compare(a, b));
    const std::string expected =
        "{\"engineA\":{\"source\":\"a\",\"precision\":\"f64\","
        "\"kernel\":\"scalar\",\"workers\":1},"
        "\"engineB\":{\"source\":\"b\",\"precision\":\"f64\","
        "\"kernel\":\"scalar\",\"workers\":1},"
        "\"digestMatch\":true,\"tolerance\":1.000e-05,\"exit\":2,"
        "\"counts\":{\"bit-exact\":1,\"within-tolerance\":0,"
        "\"diverged\":1,\"only-in-a\":0,\"only-in-b\":0,"
        "\"total\":2},"
        "\"byOpcode\":{"
        "\"ADD32rr\":{\"bit-exact\":0,\"within-tolerance\":0,"
        "\"diverged\":1,\"only-in-a\":0,\"only-in-b\":0,"
        "\"total\":1},"
        "\"NOP\":{\"bit-exact\":1,\"within-tolerance\":0,"
        "\"diverged\":0,\"only-in-a\":0,\"only-in-b\":0,"
        "\"total\":1}},"
        "\"byLength\":{\"1\":{\"bit-exact\":1,"
        "\"within-tolerance\":0,\"diverged\":1,\"only-in-a\":0,"
        "\"only-in-b\":0,\"total\":2}},"
        "\"diffs\":[{\"class\":\"diverged\",\"indexA\":1,"
        "\"indexB\":1,\"relError\":3.333e-01,"
        "\"bitsA\":\"0x4000000000000000\","
        "\"bitsB\":\"0x4008000000000000\"}]}";
    EXPECT_EQ(json, expected);
}

TEST(Report, TableNamesEveryNonBitExactBlock)
{
    const std::vector<std::string> texts = {
        "NOP\n", "ADD32rr %ebx, %ecx\n", "SUB32rr %ebx, %ecx\n"};
    const PredsArtifact a =
        makeArtifact(texts, {1.0, 2.0, 3.0}, "a");
    const PredsArtifact b =
        makeArtifact(texts, {1.0, 4.0, 3.0 + 1e-8}, "b");
    const std::string table = renderTable(compare(a, b));
    EXPECT_NE(table.find("summary: total 3 bit-exact 1 "
                         "within-tolerance 1 diverged 1 only-in-a 0 "
                         "only-in-b 0"),
              std::string::npos)
        << table;
    EXPECT_NE(table.find("exit: 2"), std::string::npos);
    EXPECT_NE(table.find("diff diverged #1 "), std::string::npos);
    EXPECT_NE(table.find("diff within-tolerance #2 "),
              std::string::npos);
    // Bit-exact blocks get no diff line.
    EXPECT_EQ(table.find("diff bit-exact"), std::string::npos);
}

// ---- Corpus resolution.

TEST(Corpus, GenSpecIsDeterministicAndDeduplicated)
{
    const auto first = resolveCorpus("gen:24:7");
    const auto second = resolveCorpus("gen:24:7");
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(corpusDigest(first), corpusDigest(second));
    std::set<std::string> unique(first.begin(), first.end());
    EXPECT_EQ(unique.size(), first.size());

    EXPECT_THROW(resolveCorpus("gen:zero"), std::runtime_error);
    EXPECT_THROW(resolveCorpus("gen:0:1"), std::runtime_error);
    EXPECT_THROW(resolveCorpus("bogus"), std::runtime_error);
    EXPECT_THROW(resolveCorpus("file:/nonexistent/corpus.txt"),
                 std::runtime_error);
}

// ---- Snapshots against the serving engine.

TEST(Snapshot, MatchesEngineAndIsWorkerCountInvariant)
{
    TempFile ckpt("snap.ckpt");
    writeTinyCheckpoint(ckpt.path(), 5);
    const auto texts = resolveCorpus("gen:12:0xbe7c");

    SnapshotOptions one;
    one.workers = 1;
    const PredsArtifact a =
        snapshotCheckpoint(ckpt.path(), texts, one);
    ASSERT_EQ(a.blocks.size(), texts.size());
    EXPECT_EQ(a.corpusDigest, corpusDigest(texts));

    // The snapshot must be exactly what the engine serves.
    serve::PredictionEngine engine =
        serve::PredictionEngine::fromFile(ckpt.path());
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_EQ(a.blocks[i].bits, bits(engine.predict(texts[i])))
            << "block " << i;

    // Serving determinism: a 3-worker snapshot is bit-identical.
    SnapshotOptions three;
    three.workers = 3;
    const PredsArtifact b =
        snapshotCheckpoint(ckpt.path(), texts, three);
    const CompareReport report = compare(a, b);
    EXPECT_EQ(report.exitCode(), 0);
    EXPECT_EQ(report.counts[DiffClass::kBitExact], texts.size());
}

TEST(Snapshot, DaemonLoopbackCompareIsBitExact)
{
    TempFile ckpt("daemon.ckpt");
    writeTinyCheckpoint(ckpt.path(), 9);
    const auto texts = resolveCorpus("gen:10:0x1dea");

    serve::Daemon daemon;
    daemon.registry().loadFromFile("m", ckpt.path());
    daemon.start();
    ASSERT_GT(daemon.port(), 0);

    const PredsArtifact live =
        snapshotDaemon("127.0.0.1", daemon.port(), "m", texts);
    EXPECT_EQ(live.engine.kernel, "daemon");
    const PredsArtifact local =
        snapshotCheckpoint(ckpt.path(), texts);

    // The wire carries raw f64 bit patterns, so a daemon snapshot
    // compares bit-exactly against a local one of the same file.
    const CompareReport report = compare(local, live);
    EXPECT_EQ(report.exitCode(), 0) << renderTable(report);
    EXPECT_EQ(report.counts[DiffClass::kBitExact], texts.size());
    daemon.drain();
}

TEST(Perturb, OneWeightDivergesExactlyTheOpcodeBlocks)
{
    TempFile ckpt("perturb_in.ckpt");
    TempFile pert("perturb_out.ckpt");
    writeTinyCheckpoint(ckpt.path(), 5);
    const auto texts = resolveCorpus(defaultCorpusSpec);

    // TEST64rr occurs in the default corpus; delta 8 pushes every
    // affected block far past the tolerance gate.
    const PerturbInfo info = perturbOpcodeEmbedding(
        ckpt.path(), pert.path(), "TEST64rr", 8.0);
    EXPECT_EQ(info.after, info.before + 8.0);

    const PredsArtifact a = snapshotCheckpoint(ckpt.path(), texts);
    const PredsArtifact b = snapshotCheckpoint(pert.path(), texts);
    const CompareReport report = compare(a, b);
    EXPECT_EQ(report.exitCode(), 2);

    size_t affected = 0;
    for (const BlockDiff &diff : report.blocks) {
        const auto opcodes = distinctOpcodes(diff.text);
        const bool has_opcode =
            std::find(opcodes.begin(), opcodes.end(), "TEST64rr") !=
            opcodes.end();
        if (has_opcode) {
            ++affected;
            EXPECT_EQ(diff.cls, DiffClass::kDiverged)
                << "block " << diff.indexA;
        } else {
            EXPECT_EQ(diff.cls, DiffClass::kBitExact)
                << "block " << diff.indexA
                << " diverged without containing the opcode";
        }
    }
    EXPECT_GT(affected, 0u);
    EXPECT_EQ(report.counts[DiffClass::kDiverged], affected);

    EXPECT_THROW(perturbOpcodeEmbedding(ckpt.path(), pert.path(),
                                        "NOSUCHOP", 1.0),
                 std::runtime_error);
}

TEST(Reference, CommittedArtifactMatchesHead)
{
    // The committed reference artifact must stay bit-exact against
    // a save-tiny checkpoint rebuilt at HEAD over the artifact's
    // own corpus — the in-tree version of the CI compare-check gate
    // (regenerate with tools/regen_compare_reference.sh after a
    // deliberate numerics change).
    const PredsArtifact ref = loadPreds(referencePath);
    ASSERT_FALSE(ref.blocks.empty());

    TempFile ckpt("reference.ckpt");
    writeTinyCheckpoint(ckpt.path(), 5);
    std::vector<std::string> texts;
    for (const BlockPreds &block : ref.blocks)
        texts.push_back(block.text);
    const PredsArtifact head =
        snapshotCheckpoint(ckpt.path(), texts);

    const CompareReport report = compare(ref, head);
    EXPECT_EQ(report.exitCode(), 0) << renderTable(report);
    EXPECT_EQ(report.counts[DiffClass::kBitExact],
              ref.blocks.size());
}

// ---- Property tests over randomized corpora.

class CompareProperty : public ::testing::TestWithParam<uint64_t>
{
  protected:
    /** A randomized artifact: corpus size, values and text pool all
     *  driven by the seed. */
    PredsArtifact
    randomArtifact(uint64_t seed)
    {
        Rng rng(seed);
        const size_t count = size_t(rng.uniformInt(8, 40));
        const auto texts = resolveCorpus(
            "gen:" + std::to_string(count) + ":" +
            std::to_string(seed * 2654435761u + 1));
        std::vector<double> values;
        for (size_t i = 0; i < texts.size(); ++i) {
            // A spread of magnitudes plus the occasional special.
            switch (rng.uniformInt(0, 9)) {
            case 0:
                values.push_back(0.0);
                break;
            case 1:
                values.push_back(
                    std::numeric_limits<double>::infinity());
                break;
            default:
                values.push_back(
                    0.25 + double(rng.next() % 100003) * 1e-3);
            }
        }
        return makeArtifact(texts, values);
    }
};

TEST_P(CompareProperty, SelfCompareIsAlwaysAllBitExact)
{
    const PredsArtifact a = randomArtifact(GetParam());
    const CompareReport report = compare(a, a);
    EXPECT_EQ(report.exitCode(), 0);
    EXPECT_EQ(report.counts[DiffClass::kBitExact],
              a.blocks.size());
    EXPECT_EQ(report.counts.total(), a.blocks.size());
    // Breakdown totals reconcile with the block count: each block
    // lands in exactly one length bucket.
    uint64_t by_length = 0;
    for (const auto &[length, counts] : report.byLength)
        by_length += counts.total();
    EXPECT_EQ(by_length, a.blocks.size());
}

TEST_P(CompareProperty, ClassCountsAreSymmetric)
{
    const uint64_t seed = GetParam();
    PredsArtifact a = randomArtifact(seed);
    PredsArtifact b = randomArtifact(seed + 1000);

    const CompareReport ab = compare(a, b);
    const CompareReport ba = compare(b, a);

    // Classification is direction-independent for matched blocks,
    // and the missing classes mirror each other.
    EXPECT_EQ(ab.counts[DiffClass::kBitExact],
              ba.counts[DiffClass::kBitExact]);
    EXPECT_EQ(ab.counts[DiffClass::kWithinTolerance],
              ba.counts[DiffClass::kWithinTolerance]);
    EXPECT_EQ(ab.counts[DiffClass::kDiverged],
              ba.counts[DiffClass::kDiverged]);
    EXPECT_EQ(ab.counts[DiffClass::kOnlyInA],
              ba.counts[DiffClass::kOnlyInB]);
    EXPECT_EQ(ab.counts[DiffClass::kOnlyInB],
              ba.counts[DiffClass::kOnlyInA]);
    EXPECT_EQ(ab.counts.total(), ba.counts.total());
    EXPECT_EQ(ab.exitCode(), ba.exitCode());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompareProperty,
                         ::testing::Range(uint64_t(1),
                                          uint64_t(11)));

} // namespace
} // namespace difftune::compare
