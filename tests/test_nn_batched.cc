/**
 * @file
 * Tests for the batched forward execution mode (nn/batched.hh).
 *
 * The contract under test:
 *
 *  - kF64 batched predictions are bit-identical to running each
 *    block through its own autograd Graph — for any batch size,
 *    submission order and mixture of ragged block/instruction
 *    lengths (the per-lane length-masking path);
 *  - batches reuse the executor's scratch: interleaving batches of
 *    different shapes through one BatchedForward never changes a
 *    result;
 *  - kF32 predictions track the double path within 1e-5 relative
 *    error over a generated test corpus (the serving accuracy gate).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "nn/batched.hh"
#include "surrogate/model.hh"

namespace difftune
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

surrogate::ModelConfig
testConfig(int param_dim, int token_layers = 1, int block_layers = 2)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 12;
    cfg.tokenLayers = token_layers;
    cfg.blockLayers = block_layers;
    cfg.paramDim = param_dim;
    cfg.seed = 0xba7c4;
    return cfg;
}

/** Ragged block texts: 1..5 instructions, varying token counts. */
const std::vector<std::string> &
raggedBlocks()
{
    static const std::vector<std::string> blocks = {
        "NOP\n",
        "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n"
        "IMUL64rr %rbx, %rcx\nCMP64rr %rcx, %rdx\nPUSH64r %rbx\n",
        "ADD32rr %ebx, %ecx\n",
        "PUSH64r %rbx\nPOP64r %rcx\nADD32rr %ebx, %ecx\n",
        "IMUL64rr %rbx, %rcx\nNOP\n",
    };
    return blocks;
}

std::vector<surrogate::EncodedBlock>
encodeAll(const std::vector<std::string> &texts)
{
    std::vector<surrogate::EncodedBlock> encoded;
    for (const auto &text : texts)
        encoded.push_back(
            surrogate::encodeBlock(isa::parseBlock(text)));
    return encoded;
}

std::vector<double>
batchedHeads(const surrogate::Model &model,
             const std::vector<surrogate::EncodedBlock> &encoded,
             nn::Precision precision)
{
    nn::BatchedForward bf(model.params(), precision);
    std::vector<const surrogate::EncodedBlock *> blocks;
    for (const auto &e : encoded)
        blocks.push_back(&e);
    std::vector<double> out;
    model.predictBatch(bf, blocks, {}, out);
    return out;
}

TEST(NnBatched, MatchesSequentialBitExactRagged)
{
    const surrogate::Model model(testConfig(0),
                                 isa::theVocab().size());
    const auto encoded = encodeAll(raggedBlocks());
    const auto batched =
        batchedHeads(model, encoded, nn::Precision::kF64);
    ASSERT_EQ(batched.size(), encoded.size());
    for (size_t i = 0; i < encoded.size(); ++i) {
        EXPECT_TRUE(sameBits(batched[i], model.predict(encoded[i])))
            << "block " << i;
    }
}

TEST(NnBatched, BatchOfOneMatchesSequential)
{
    const surrogate::Model model(testConfig(0, 2, 1),
                                 isa::theVocab().size());
    for (const auto &text : raggedBlocks()) {
        const auto encoded = encodeAll({text});
        const auto batched =
            batchedHeads(model, encoded, nn::Precision::kF64);
        ASSERT_EQ(batched.size(), 1u);
        EXPECT_TRUE(sameBits(batched[0], model.predict(encoded[0])));
    }
}

TEST(NnBatched, EmptyBatchIsANoOp)
{
    const surrogate::Model model(testConfig(0),
                                 isa::theVocab().size());
    nn::BatchedForward bf(model.params());
    std::vector<double> out{1.0, 2.0};
    model.predictBatch(bf, {}, {}, out);
    EXPECT_TRUE(out.empty());
}

TEST(NnBatched, SubmissionOrderDoesNotChangeBits)
{
    const surrogate::Model model(testConfig(0),
                                 isa::theVocab().size());
    const auto encoded = encodeAll(raggedBlocks());
    const auto forward =
        batchedHeads(model, encoded, nn::Precision::kF64);
    std::vector<surrogate::EncodedBlock> reversed(encoded.rbegin(),
                                                  encoded.rend());
    const auto backward =
        batchedHeads(model, reversed, nn::Precision::kF64);
    ASSERT_EQ(forward.size(), backward.size());
    for (size_t i = 0; i < forward.size(); ++i)
        EXPECT_TRUE(sameBits(forward[i],
                             backward[forward.size() - 1 - i]))
            << "block " << i;
}

TEST(NnBatched, ScratchReuseAcrossDifferentShapes)
{
    const surrogate::Model model(testConfig(0),
                                 isa::theVocab().size());
    const auto encoded = encodeAll(raggedBlocks());
    std::vector<const surrogate::EncodedBlock *> all;
    for (const auto &e : encoded)
        all.push_back(&e);

    nn::BatchedForward bf(model.params());
    std::vector<double> first, again, one;
    model.predictBatch(bf, all, {}, first);
    // A different shape in between (batch of one, longest block)...
    model.predictBatch(bf, {all[1]}, {}, one);
    // ...must not perturb a rerun of the original batch.
    model.predictBatch(bf, all, {}, again);
    ASSERT_EQ(first.size(), again.size());
    EXPECT_TRUE(sameBits(one[0], first[1]));
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(sameBits(first[i], again[i])) << "block " << i;
}

TEST(NnBatched, SurrogateModeMatchesSequentialBitExact)
{
    const core::ParamNormalizer norm(params::SamplingDist::full());
    const surrogate::Model model(testConfig(norm.paramDim()),
                                 isa::theVocab().size());
    const params::ParamTable table =
        hw::defaultTable(hw::Uarch::Haswell);

    std::vector<isa::BasicBlock> blocks;
    std::vector<surrogate::EncodedBlock> encoded;
    for (const auto &text : raggedBlocks()) {
        blocks.push_back(isa::parseBlock(text));
        encoded.push_back(surrogate::encodeBlock(blocks.back()));
    }

    // Per-opcode parameter columns, as the serving engine feeds them.
    std::vector<nn::Tensor> per_opcode;
    for (size_t op = 0; op < table.numOpcodes(); ++op)
        per_opcode.push_back(core::opcodeParamInput(
            table, isa::OpcodeId(op), norm));
    std::vector<const surrogate::EncodedBlock *> batch;
    std::vector<std::vector<const nn::Tensor *>> inst_params;
    for (size_t b = 0; b < blocks.size(); ++b) {
        batch.push_back(&encoded[b]);
        inst_params.emplace_back();
        for (const auto &inst : blocks[b].insts)
            inst_params.back().push_back(
                &per_opcode[size_t(inst.opcode)]);
    }

    nn::BatchedForward bf(model.params());
    std::vector<double> batched;
    model.predictBatch(bf, batch, inst_params, batched);

    for (size_t b = 0; b < blocks.size(); ++b) {
        nn::Graph graph;
        nn::Ctx ctx{graph, model.params(), nullptr};
        auto inputs =
            core::constParamInputs(graph, table, blocks[b], norm);
        const double expected = graph.scalarValue(
            model.forward(ctx, encoded[b], inputs));
        EXPECT_TRUE(sameBits(batched[b], expected)) << "block " << b;
    }
}

TEST(NnBatched, F32TracksF64OnGeneratedCorpus)
{
    const surrogate::Model model(
        [] {
            surrogate::ModelConfig cfg;
            cfg.embedDim = 32;
            cfg.hidden = 64;
            cfg.tokenLayers = 1;
            cfg.blockLayers = 2;
            cfg.paramDim = 0;
            cfg.seed = 0xf10a7;
            return cfg;
        }(),
        isa::theVocab().size());

    const auto corpus = bhive::Corpus::generate(200, 0x5eed);
    std::vector<surrogate::EncodedBlock> encoded;
    for (size_t i = 0; i < corpus.size(); ++i)
        encoded.push_back(surrogate::encodeBlock(corpus[i].block));

    const auto f64 = batchedHeads(model, encoded,
                                  nn::Precision::kF64);
    const auto f32 = batchedHeads(model, encoded,
                                  nn::Precision::kF32);
    ASSERT_EQ(f64.size(), f32.size());
    double worst = 0.0;
    for (size_t i = 0; i < f64.size(); ++i) {
        // The serving accuracy gate: the prediction is exp(head), so
        // compare the served values, not just the raw head outputs.
        const double a = std::exp(std::min(f64[i], 30.0));
        const double b = std::exp(std::min(f32[i], 30.0));
        const double rel = std::fabs(a - b) / std::fabs(a);
        worst = std::max(worst, rel);
        EXPECT_LT(rel, 1e-5) << "block " << i;
    }
    // Not vacuous: f32 must actually differ from f64 somewhere.
    EXPECT_GT(worst, 0.0);
}

TEST(NnBatched, F32IsDeterministic)
{
    const surrogate::Model model(testConfig(0),
                                 isa::theVocab().size());
    const auto encoded = encodeAll(raggedBlocks());
    const auto a = batchedHeads(model, encoded, nn::Precision::kF32);
    const auto b = batchedHeads(model, encoded, nn::Precision::kF32);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameBits(a[i], b[i])) << "block " << i;
}

} // namespace
} // namespace difftune
