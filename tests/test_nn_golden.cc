/**
 * @file
 * Golden-regression net for the nn/ execution core.
 *
 * The fused-op/arena rewrite of the autograd tape must not change a
 * single bit of the numerics. This suite locks them in:
 *
 *  - surrogate predictions (Ithemal mode and paramDim > 0 mode) and a
 *    5-step training-loss trajectory plus a 3-step parameter-table
 *    trajectory are compared bit-exactly against
 *    tests/golden/nn_numerics.txt, which was generated with the
 *    pre-rewrite node-per-op engine (PR 2 tree) and is regenerated
 *    only deliberately (DIFFTUNE_REGEN_GOLDEN=1);
 *  - a checkpoint round-trip through the fused-op graphs must
 *    reproduce the in-memory predictions exactly;
 *  - the fused-op trainer must produce bit-identical losses and
 *    gradients for 1, 2 and 4 workers (the training-side analogue of
 *    the serve worker-invariance test).
 *
 * Golden doubles are stored as raw IEEE-754 bit patterns; equality is
 * exact (0 ulp), which is achievable because the fused kernels
 * replicate the reference per-element operation order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/raw_table.hh"
#include "core/trainer.hh"
#include "io/checkpoint.hh"
#include "isa/parse.hh"
#include "nn/batched.hh"
#include "nn/optim.hh"
#include "params/sampling.hh"
#include "surrogate/model.hh"

#ifndef DIFFTUNE_GOLDEN_DIR
#define DIFFTUNE_GOLDEN_DIR "tests/golden"
#endif

namespace difftune
{
namespace
{

constexpr const char *goldenPath =
    DIFFTUNE_GOLDEN_DIR "/nn_numerics.txt";

/**
 * Where a regen (DIFFTUNE_REGEN_GOLDEN=1) writes. Overridable with
 * DIFFTUNE_GOLDEN_OUT so tools/golden_regen_check.sh can regenerate
 * into a temp file and diff against the committed golden without
 * touching the source tree.
 */
std::string
goldenOutPath()
{
    const char *env = std::getenv("DIFFTUNE_GOLDEN_OUT");
    return env && *env ? env : goldenPath;
}

uint64_t
bits(double v)
{
    uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** Fixed workload: block texts spanning 1..5 instructions. */
const std::vector<std::string> &
goldenBlocks()
{
    static const std::vector<std::string> blocks = {
        "NOP\n",
        "ADD32rr %ebx, %ecx\n",
        "IMUL64rr %rbx, %rcx\nNOP\n",
        "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n",
        "PUSH64r %rbx\nPOP64r %rcx\nADD32rr %ebx, %ecx\n",
        "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n"
        "IMUL64rr %rbx, %rcx\nCMP64rr %rcx, %rdx\nPUSH64r %rbx\n",
    };
    return blocks;
}

const std::vector<double> &
goldenTargets()
{
    static const std::vector<double> targets = {1.0, 3.0, 0.5,
                                                2.0, 1.5, 2.5};
    return targets;
}

std::vector<surrogate::EncodedBlock>
encodeAll()
{
    std::vector<surrogate::EncodedBlock> encoded;
    for (const auto &text : goldenBlocks())
        encoded.push_back(
            surrogate::encodeBlock(isa::parseBlock(text)));
    return encoded;
}

surrogate::ModelConfig
goldenConfig(int param_dim)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 12;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 2;
    cfg.paramDim = param_dim;
    cfg.seed = 0xd1ff;
    return cfg;
}

/** A deterministic non-trivial parameter table. */
params::ParamTable
goldenTable()
{
    params::ParamTable table(isa::theIsa().numOpcodes());
    for (size_t op = 0; op < table.numOpcodes(); ++op) {
        auto &inst = table.perOpcode[op];
        inst.numMicroOps = 1.0 + double(op % 4);
        inst.writeLatency = double((op * 7) % 6);
        for (size_t i = 0; i < inst.readAdvance.size(); ++i)
            inst.readAdvance[i] = double((op + i) % 5);
        for (size_t i = 0; i < inst.portMap.size(); ++i)
            inst.portMap[i] = double((op + 3 * i) % 3);
    }
    table.dispatchWidth = 4.0;
    table.reorderBufferSize = 120.0;
    return table;
}

/** Predictions of the paramDim = 0 (Ithemal-mode) model. */
std::vector<double>
ithemalPredictions()
{
    surrogate::Model model(goldenConfig(0), isa::theVocab().size());
    std::vector<double> preds;
    for (const auto &encoded : encodeAll())
        preds.push_back(model.predict(encoded));
    return preds;
}

/** Predictions of a paramDim > 0 surrogate fed by @p model. */
std::vector<double>
surrogatePredictions(const surrogate::Model &model,
                     const params::ParamTable &table,
                     const core::ParamNormalizer &norm)
{
    std::vector<double> preds;
    for (const auto &text : goldenBlocks()) {
        const isa::BasicBlock block = isa::parseBlock(text);
        nn::Graph graph;
        nn::Ctx ctx{graph, model.params(), nullptr};
        auto inputs = constParamInputs(graph, table, block, norm);
        nn::Var pred = graph.exp(model.forward(
            ctx, surrogate::encodeBlock(block), inputs));
        preds.push_back(graph.scalarValue(pred));
    }
    return preds;
}

/**
 * A 5-step Ithemal-style trajectory: one full batch per step on two
 * workers, Adam with gradient clipping — the BatchRunner path every
 * trainer uses.
 */
std::vector<double>
trainingTrajectory(int workers, nn::Grads *final_grads = nullptr)
{
    surrogate::Model model(goldenConfig(0), isa::theVocab().size());
    const auto encoded = encodeAll();
    const auto &targets = goldenTargets();

    nn::Adam adam(0.01);
    core::BatchRunner runner(model.params(), workers);
    std::vector<double> losses;
    for (int step = 0; step < 5; ++step) {
        const double loss = runner.runBatch(
            0, encoded.size(),
            [&](size_t i, nn::Graph &g, nn::Grads &grads) {
                nn::Ctx ctx{g, model.params(), &grads};
                nn::Var pred =
                    g.exp(model.forward(ctx, encoded[i], {}));
                nn::Var l = g.lossMape(pred, targets[i], 0.05);
                g.backward(l);
                return g.scalarValue(l);
            });
        if (final_grads && step == 4)
            final_grads->addFrom(runner.batchGrads());
        runner.apply(model.params(), adam, 5.0);
        losses.push_back(loss);
    }
    return losses;
}

/**
 * A 3-step parameter-table trajectory: gradients flow through the
 * trainable RawTable inputs into a frozen surrogate — DiffTune's
 * phase 4 and the raw_table soft-clamp fusion path.
 */
std::vector<double>
tableTrajectory()
{
    const core::ParamNormalizer norm(params::SamplingDist::full());
    surrogate::Model model(goldenConfig(norm.paramDim()),
                           isa::theVocab().size());
    core::RawTable raw(goldenTable(), norm);
    const auto &targets = goldenTargets();

    std::vector<isa::BasicBlock> blocks;
    std::vector<surrogate::EncodedBlock> encoded;
    for (const auto &text : goldenBlocks()) {
        blocks.push_back(isa::parseBlock(text));
        encoded.push_back(surrogate::encodeBlock(blocks.back()));
    }

    nn::Adam adam(0.05);
    core::BatchRunner runner(raw.params(), 2);
    std::vector<double> losses;
    for (int step = 0; step < 3; ++step) {
        const double loss = runner.runBatch(
            0, blocks.size(),
            [&](size_t i, nn::Graph &g, nn::Grads &grads) {
                auto inputs = raw.paramInputs(g, blocks[i], &grads);
                nn::Ctx ctx{g, model.params(), nullptr};
                nn::Var pred =
                    g.exp(model.forward(ctx, encoded[i], inputs));
                nn::Var l = g.lossMape(pred, targets[i], 0.05);
                g.backward(l);
                return g.scalarValue(l);
            });
        runner.apply(raw.params(), adam, 1.0);
        losses.push_back(loss);
    }
    return losses;
}

/** All golden values, keyed "section:index". */
std::map<std::string, double>
computeAll()
{
    std::map<std::string, double> out;
    auto put = [&out](const char *section,
                      const std::vector<double> &values) {
        for (size_t i = 0; i < values.size(); ++i)
            out[std::string(section) + ":" + std::to_string(i)] =
                values[i];
    };
    put("ithemal_pred", ithemalPredictions());
    {
        const core::ParamNormalizer norm(params::SamplingDist::full());
        surrogate::Model model(goldenConfig(norm.paramDim()),
                               isa::theVocab().size());
        put("surrogate_pred",
            surrogatePredictions(model, goldenTable(), norm));
    }
    put("train_loss", trainingTrajectory(2));
    put("table_loss", tableTrajectory());
    return out;
}

void
writeGolden(const std::map<std::string, double> &values)
{
    const std::string out = goldenOutPath();
    std::ofstream os(out);
    ASSERT_TRUE(os.good()) << "cannot write " << out;
    os << "# nn/ golden numerics: key ieee754-bits(hex) value\n"
       << "# regenerate: DIFFTUNE_REGEN_GOLDEN=1 ./test_nn_golden\n";
    char buf[64];
    for (const auto &[key, value] : values) {
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(bits(value)));
        os << key << ' ' << buf << ' ' << value << '\n';
    }
}

std::map<std::string, uint64_t>
readGolden()
{
    std::ifstream is(goldenPath);
    std::map<std::string, uint64_t> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, hex;
        ls >> key >> hex;
        out[key] = std::strtoull(hex.c_str(), nullptr, 16);
    }
    return out;
}

bool
regenRequested()
{
    const char *env = std::getenv("DIFFTUNE_REGEN_GOLDEN");
    return env && *env && *env != '0';
}

class TempFile
{
  public:
    explicit TempFile(const char *name)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("difftune_golden_") + name))
                    .string())
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(NnGolden, MatchesCommittedNumericsBitExactly)
{
    const auto computed = computeAll();
    if (regenRequested()) {
        writeGolden(computed);
        GTEST_SKIP() << "regenerated " << goldenOutPath();
    }
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath
        << " (run with DIFFTUNE_REGEN_GOLDEN=1 to create it)";
    ASSERT_EQ(golden.size(), computed.size());
    for (const auto &[key, value] : computed) {
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "golden key missing: " << key;
        EXPECT_EQ(it->second, bits(value))
            << key << ": engine produced " << value
            << " but the golden file disagrees — the nn/ rewrite "
               "changed the numerics";
    }
}

TEST(NnGolden, BatchedForwardMatchesGoldenBitExactly)
{
    // The batched multi-block executor (nn/batched.hh) must
    // reproduce the same golden bits as the sequential tape — both
    // model modes, the whole golden workload as one ragged batch.
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty()) << "missing " << goldenPath;
    auto expect = [&](const char *section, size_t i, double value) {
        auto it = golden.find(std::string(section) + ":" +
                              std::to_string(i));
        ASSERT_NE(it, golden.end());
        EXPECT_EQ(it->second, bits(value))
            << section << ":" << i
            << ": batched forward diverged from the golden file";
    };

    const auto encoded = encodeAll();
    std::vector<const surrogate::EncodedBlock *> batch;
    for (const auto &e : encoded)
        batch.push_back(&e);

    {
        surrogate::Model model(goldenConfig(0),
                               isa::theVocab().size());
        nn::BatchedForward bf(model.params());
        std::vector<double> heads;
        model.predictBatch(bf, batch, {}, heads);
        for (size_t i = 0; i < heads.size(); ++i)
            expect("ithemal_pred", i, heads[i]);
    }
    {
        const core::ParamNormalizer norm(
            params::SamplingDist::full());
        surrogate::Model model(goldenConfig(norm.paramDim()),
                               isa::theVocab().size());
        const params::ParamTable table = goldenTable();
        std::vector<nn::Tensor> per_opcode;
        for (size_t op = 0; op < table.numOpcodes(); ++op)
            per_opcode.push_back(core::opcodeParamInput(
                table, isa::OpcodeId(op), norm));
        std::vector<std::vector<const nn::Tensor *>> inst_params;
        // The cross-batch cache is keyed by interned ids now: give
        // every block its id sequence from one Interner.
        isa::Interner interner;
        std::vector<std::vector<isa::InstId>> id_storage;
        for (const auto &text : goldenBlocks()) {
            const isa::BasicBlock block = isa::parseBlock(text);
            inst_params.emplace_back();
            id_storage.emplace_back();
            for (const auto &inst : block.insts) {
                inst_params.back().push_back(
                    &per_opcode[size_t(inst.opcode)]);
                id_storage.back().push_back(
                    interner.internInst(inst));
            }
        }
        std::vector<const std::vector<isa::InstId> *> inst_ids;
        for (const auto &ids : id_storage)
            inst_ids.push_back(&ids);
        nn::BatchedForward bf(model.params());
        surrogate::InstHiddenCache cache;
        std::vector<double> heads;
        model.predictBatch(bf, batch, inst_params, heads, &cache,
                           &inst_ids);
        for (size_t i = 0; i < heads.size(); ++i)
            expect("surrogate_pred", i,
                   std::exp(std::min(heads[i], 30.0)));
        // A rerun through the now-warm instruction cache must not
        // change a bit either.
        std::vector<double> again;
        model.predictBatch(bf, batch, inst_params, again, &cache,
                           &inst_ids);
        EXPECT_GT(cache.size(), 0u);
        for (size_t i = 0; i < heads.size(); ++i)
            EXPECT_EQ(bits(heads[i]), bits(again[i])) << i;
    }
}

TEST(NnGolden, CheckpointRoundTripReproducesPredictions)
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    surrogate::Model model(goldenConfig(norm.paramDim()),
                           isa::theVocab().size());
    const params::ParamTable table = goldenTable();
    const auto direct = surrogatePredictions(model, table, norm);

    TempFile file("roundtrip.ckpt");
    io::saveCheckpoint(file.path(), &model, &dist, &table);
    io::Checkpoint loaded = io::loadCheckpoint(file.path());
    ASSERT_TRUE(loaded.model);
    ASSERT_TRUE(loaded.dist.has_value());
    ASSERT_TRUE(loaded.table.has_value());

    const core::ParamNormalizer loaded_norm(*loaded.dist);
    const auto reloaded = surrogatePredictions(
        *loaded.model, *loaded.table, loaded_norm);
    ASSERT_EQ(direct.size(), reloaded.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(bits(direct[i]), bits(reloaded[i])) << "block " << i;
}

TEST(NnGolden, TrainingIsWorkerCountInvariant)
{
    surrogate::Model probe(goldenConfig(0), isa::theVocab().size());
    nn::Grads grads1(probe.params()), grads2(probe.params()),
        grads4(probe.params());
    const auto loss1 = trainingTrajectory(1, &grads1);
    const auto loss2 = trainingTrajectory(2, &grads2);
    const auto loss4 = trainingTrajectory(4, &grads4);

    ASSERT_EQ(loss1.size(), loss2.size());
    ASSERT_EQ(loss1.size(), loss4.size());
    for (size_t s = 0; s < loss1.size(); ++s) {
        EXPECT_EQ(bits(loss1[s]), bits(loss2[s])) << "step " << s;
        EXPECT_EQ(bits(loss1[s]), bits(loss4[s])) << "step " << s;
    }
    for (size_t p = 0; p < grads1.count(); ++p) {
        const auto &g1 = grads1[int(p)].data;
        const auto &g2 = grads2[int(p)].data;
        const auto &g4 = grads4[int(p)].data;
        ASSERT_EQ(g1.size(), g2.size());
        for (size_t i = 0; i < g1.size(); ++i) {
            EXPECT_EQ(bits(g1[i]), bits(g2[i]))
                << "param " << p << " index " << i;
            EXPECT_EQ(bits(g1[i]), bits(g4[i]))
                << "param " << p << " index " << i;
        }
    }
}

} // namespace
} // namespace difftune
