/**
 * @file
 * Tests for USim, the llvm_sim-analog micro-op simulator.
 */

#include <gtest/gtest.h>

#include "isa/parse.hh"
#include "usim/usim.hh"

namespace difftune::usim
{
namespace
{

using isa::parseBlock;
using params::ParamTable;

ParamTable
neutralTable()
{
    ParamTable table(isa::theIsa().numOpcodes());
    for (auto &inst : table.perOpcode) {
        inst.writeLatency = 1;
        inst.portMap.fill(0);
        inst.portMap[0] = 1; // one micro-op on port 0
    }
    return table;
}

isa::OpcodeId
op(const char *name)
{
    auto id = isa::theIsa().opcodeByName(name);
    EXPECT_NE(id, isa::invalidOpcode);
    return id;
}

TEST(USim, EmptyBlockZero)
{
    USim sim;
    EXPECT_EQ(sim.timing(isa::BasicBlock{}, neutralTable()), 0.0);
}

TEST(USim, PortThroughputBound)
{
    // All micro-ops on port 0: one per cycle regardless of frontend.
    auto block = parseBlock("NOP\nNOP\nNOP\n");
    USim sim;
    EXPECT_NEAR(sim.timing(block, neutralTable()), 3.0, 0.1);
}

TEST(USim, SpreadingPortsRaisesThroughput)
{
    auto block = parseBlock("NOP\nNOP\n");
    auto table = neutralTable();
    USim sim;
    const double same_port = sim.timing(block, table);
    // Give NOP a second variant on port 1 by alternating port maps:
    // here we just move NOP to two micro-ops on different ports and
    // verify the bound follows the busiest port.
    table.perOpcode[op("NOP")].portMap[0] = 0;
    table.perOpcode[op("NOP")].portMap[1] = 1;
    const double other_port = sim.timing(block, table);
    EXPECT_NEAR(same_port, other_port, 0.1); // symmetric
}

TEST(USim, UopCountIsPortMapSum)
{
    // 8 micro-ops per instruction on 8 ports, frontend width 4:
    // frontend-bound at 2 cycles per instruction.
    auto block = parseBlock("NOP\n");
    auto table = neutralTable();
    auto &pm = table.perOpcode[op("NOP")].portMap;
    pm.fill(1);
    pm[8] = 0;
    pm[9] = 0;
    USim sim;
    EXPECT_NEAR(sim.timing(block, table), 2.0, 0.2);
}

TEST(USim, WriteLatencyChains)
{
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    auto table = neutralTable();
    USim sim;
    for (int latency : {1, 3, 7}) {
        table.perOpcode[op("ADD32rr")].writeLatency = latency;
        EXPECT_NEAR(sim.timing(block, table), double(latency), 0.2)
            << latency;
    }
}

TEST(USim, ZeroPortMapInstructionIsFree)
{
    auto block = parseBlock("NOP\n");
    auto table = neutralTable();
    table.perOpcode[op("NOP")].portMap.fill(0);
    table.perOpcode[op("NOP")].writeLatency = 0;
    USim sim;
    // Still decodes one synthetic micro-op: frontend bound 1/4.
    EXPECT_NEAR(sim.timing(block, table), 0.25, 0.05);
}

TEST(USim, FrontendWidthMatters)
{
    auto block = parseBlock(
        "MOV32ri $1, %ebx\nMOV32ri $2, %ecx\n"
        "MOV32ri $3, %edi\nMOV32ri $4, %esi\n");
    auto table = neutralTable();
    // Independent movs on 4 different ports.
    table.perOpcode[op("MOV32ri")].portMap.fill(0);
    table.perOpcode[op("MOV32ri")].portMap[0] = 1;
    USim wide(100, 8), narrow(100, 1);
    EXPECT_LT(wide.timing(block, table) - 0.01,
              narrow.timing(block, table));
}

TEST(USim, Deterministic)
{
    auto block = parseBlock(
        "ADD32rr %ebx, %ecx\nMOV64rm 8(%rsi), %rdi\nPUSH64r %rbx\n");
    auto table = neutralTable();
    USim sim;
    EXPECT_EQ(sim.timing(block, table), sim.timing(block, table));
}

TEST(USim, StructurallyDifferentFromXMca)
{
    // USim ignores NumMicroOps and DispatchWidth (Table VII): varying
    // them must not change its predictions.
    auto block = parseBlock("ADD32rr %ebx, %ecx\nNOP\n");
    auto table = neutralTable();
    USim sim;
    const double before = sim.timing(block, table);
    table.perOpcode[op("ADD32rr")].numMicroOps = 9;
    table.dispatchWidth = 1;
    table.reorderBufferSize = 10;
    EXPECT_EQ(sim.timing(block, table), before);
}

class LatencyMonotoneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LatencyMonotoneTest, NonDecreasingInLatency)
{
    auto block = parseBlock(
        "ADD32rr %ebx, %ecx\nSUB32rr %ecx, %ebx\n");
    auto table = neutralTable();
    USim sim;
    table.perOpcode[op("ADD32rr")].writeLatency = GetParam();
    const double t1 = sim.timing(block, table);
    table.perOpcode[op("ADD32rr")].writeLatency = GetParam() + 2;
    const double t2 = sim.timing(block, table);
    EXPECT_LE(t1, t2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencyMonotoneTest,
                         ::testing::Values(0, 1, 3, 6, 10));

} // namespace
} // namespace difftune::usim
