/**
 * @file
 * Tests for the binary checkpoint layer: little-endian primitives,
 * the chunked container (strict validation of truncated / corrupt /
 * wrong-version files), bit-exact section round trips, and full
 * save/load through a file.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/checkpoint.hh"
#include "isa/parse.hh"

namespace difftune::io
{
namespace
{

/** A unique temp path, removed when the guard dies. */
class TempFile
{
  public:
    explicit TempFile(const char *name)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("difftune_io_") + name))
                    .string())
    {
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

const double specialDoubles[] = {
    0.0,
    -0.0,
    1.0,
    -1.0 / 3.0,
    1e-300,
    std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::max(),
};

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(Serialize, RoundTripPrimitives)
{
    ByteWriter writer;
    writer.u8(0xab);
    writer.u32(0xdeadbeef);
    writer.u64(0x0123456789abcdefULL);
    writer.i32(-42);
    writer.str("hello");
    for (double v : specialDoubles)
        writer.f64(v);

    ByteReader reader(writer.data(), "test");
    EXPECT_EQ(reader.u8(), 0xab);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(reader.i32(), -42);
    EXPECT_EQ(reader.str(), "hello");
    for (double v : specialDoubles)
        EXPECT_TRUE(sameBits(reader.f64(), v));
    EXPECT_TRUE(reader.atEnd());
}

TEST(Serialize, LittleEndianLayout)
{
    // The wire format is little-endian regardless of host order.
    ByteWriter writer;
    writer.u32(0x01020304);
    const std::string &bytes = writer.data();
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(uint8_t(bytes[0]), 0x04);
    EXPECT_EQ(uint8_t(bytes[1]), 0x03);
    EXPECT_EQ(uint8_t(bytes[2]), 0x02);
    EXPECT_EQ(uint8_t(bytes[3]), 0x01);
}

TEST(Serialize, ReadPastEndRejected)
{
    ByteWriter writer;
    writer.u32(7);
    ByteReader reader(writer.data(), "test");
    reader.u32();
    EXPECT_THROW(reader.u8(), std::runtime_error);
}

TEST(Serialize, Crc32CheckValue)
{
    // The standard CRC-32 check value.
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32(""), 0u);
}

TEST(Container, HeaderBytesAreStable)
{
    // The on-disk header is pinned: 8 magic bytes then the version as
    // explicit little-endian — a checkpoint written on any host must
    // start with exactly these bytes. A file that uses no version-2
    // feature is stamped version 1 so that version-1 readers keep
    // accepting it (docs/CHECKPOINT_FORMAT.md).
    ChunkWriter writer;
    writer.add("ABCD", "x");
    const std::string bytes = writer.serialize();
    ASSERT_GE(bytes.size(), 16u);
    EXPECT_EQ(bytes.substr(0, 8), std::string("DTCHKPT\0", 8));
    EXPECT_EQ(uint8_t(bytes[8]), 1);
    EXPECT_EQ(uint8_t(bytes[9]), 0);
    EXPECT_EQ(uint8_t(bytes[10]), 0);
    EXPECT_EQ(uint8_t(bytes[11]), 0);
    // Chunk count = 1, little-endian.
    EXPECT_EQ(uint8_t(bytes[12]), 1);
    EXPECT_EQ(uint8_t(bytes[13]), 0);
}

TEST(Container, RequiredVersionIsStamped)
{
    ChunkWriter writer;
    writer.add("ABCD", "x");
    writer.requireVersion(2);
    writer.requireVersion(1); // the maximum wins
    const std::string bytes = writer.serialize();
    EXPECT_EQ(uint8_t(bytes[8]), 2);
    // This build reads what it writes...
    ChunkReader reader(bytes);
    EXPECT_EQ(reader.payload("ABCD"), "x");
    // ...and still rejects anything newer than checkpointVersion
    // (the version-1 reader's rejection of version-2 files worked
    // the same way).
    std::string future = bytes;
    future[8] = char(checkpointVersion + 1);
    EXPECT_THROW(ChunkReader{future}, std::runtime_error);
}

TEST(Container, ChunkRoundTrip)
{
    ChunkWriter writer;
    writer.add("AAAA", "first payload");
    writer.add("BBBB", std::string("\0binary\xff", 8));
    writer.add("CCCC", "");
    ChunkReader reader(writer.serialize());
    EXPECT_EQ(reader.numChunks(), 3u);
    EXPECT_TRUE(reader.has("AAAA"));
    EXPECT_FALSE(reader.has("ZZZZ"));
    EXPECT_EQ(reader.payload("AAAA"), "first payload");
    EXPECT_EQ(reader.payload("BBBB"), std::string_view("\0binary\xff", 8));
    EXPECT_EQ(reader.payload("CCCC"), "");
    EXPECT_THROW(reader.payload("ZZZZ"), std::runtime_error);
}

TEST(Container, BadMagicRejected)
{
    ChunkWriter writer;
    writer.add("AAAA", "payload");
    std::string bytes = writer.serialize();
    bytes[0] = 'X';
    EXPECT_THROW(ChunkReader{bytes}, std::runtime_error);
}

TEST(Container, WrongVersionRejected)
{
    ChunkWriter writer;
    writer.add("AAAA", "payload");
    std::string bytes = writer.serialize();
    bytes[8] = char(checkpointVersion + 1);
    EXPECT_THROW(ChunkReader{bytes}, std::runtime_error);
}

TEST(Container, TruncationRejectedEverywhere)
{
    ChunkWriter writer;
    writer.add("AAAA", "some payload worth guarding");
    const std::string bytes = writer.serialize();
    // Any proper prefix must be rejected, wherever the cut lands
    // (magic, header, tag, size, payload or CRC).
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_THROW(ChunkReader(bytes.substr(0, cut)),
                     std::runtime_error)
            << "prefix of " << cut << " bytes was accepted";
    }
    EXPECT_NO_THROW(ChunkReader{bytes});
}

TEST(Container, TrailingGarbageRejected)
{
    ChunkWriter writer;
    writer.add("AAAA", "payload");
    EXPECT_THROW(ChunkReader(writer.serialize() + "junk"),
                 std::runtime_error);
}

TEST(Container, CorruptPayloadByteRejected)
{
    ChunkWriter writer;
    writer.add("AAAA", "payload under crc");
    std::string bytes = writer.serialize();
    bytes[bytes.size() - 10] ^= 0x01; // inside the payload
    EXPECT_THROW(ChunkReader{bytes}, std::runtime_error);
}

TEST(Container, OversizedChunkLengthRejected)
{
    ChunkWriter writer;
    writer.add("AAAA", "pay");
    std::string bytes = writer.serialize();
    // Patch the chunk's u64 size field (offset 20) to a huge value.
    bytes[20] = char(0xff);
    bytes[21] = char(0xff);
    EXPECT_THROW(ChunkReader{bytes}, std::runtime_error);
}

TEST(Container, DuplicateTagPanics)
{
    ChunkWriter writer;
    writer.add("AAAA", "one");
    EXPECT_DEATH(writer.add("AAAA", "two"), "duplicate chunk");
}

TEST(Sections, ParamSetRoundTripBitExact)
{
    nn::ParamSet original;
    original.add(3, 4);
    original.add(1, 1);
    original.add(2, 5);
    Rng rng(11);
    for (size_t i = 0; i < original.count(); ++i)
        original[int(i)].uniformInit(rng, 3.0);
    // Plant the awkward values a text format would mangle.
    original[0].data[0] = specialDoubles[1];  // -0.0
    original[0].data[1] = specialDoubles[5];  // denorm_min
    original[1].data[0] = specialDoubles[8];  // NaN
    original[2].data[0] = specialDoubles[3];  // -1/3

    nn::ParamSet restored;
    restored.add(3, 4);
    restored.add(1, 1);
    restored.add(2, 5);
    decodeParamSet(encodeParamSet(original), restored);

    for (size_t i = 0; i < original.count(); ++i)
        for (size_t j = 0; j < original[int(i)].data.size(); ++j)
            EXPECT_TRUE(sameBits(original[int(i)].data[j],
                                 restored[int(i)].data[j]));
}

TEST(Sections, ParamSetShapeMismatchRejected)
{
    nn::ParamSet original;
    original.add(3, 4);
    const std::string payload = encodeParamSet(original);

    nn::ParamSet wrong_shape;
    wrong_shape.add(4, 3);
    EXPECT_THROW(decodeParamSet(payload, wrong_shape),
                 std::runtime_error);

    nn::ParamSet wrong_count;
    wrong_count.add(3, 4);
    wrong_count.add(1, 1);
    EXPECT_THROW(decodeParamSet(payload, wrong_count),
                 std::runtime_error);
}

TEST(Sections, ParamTableRoundTripBitExact)
{
    Rng rng(23);
    params::ParamTable original(isa::theIsa().numOpcodes());
    for (auto &inst : original.perOpcode) {
        inst.numMicroOps = rng.uniformReal(1.0, 10.0);
        inst.writeLatency = rng.uniformReal(0.0, 5.0);
        for (double &ra : inst.readAdvance)
            ra = rng.uniformReal(0.0, 5.0);
        for (double &pc : inst.portMap)
            pc = rng.uniformReal(0.0, 2.0);
    }
    original.dispatchWidth = 4.0 + 1.0 / 3.0;
    original.reorderBufferSize = -0.0;

    const params::ParamTable restored =
        decodeParamTable(encodeParamTable(original));
    const auto a = original.flatten(), b = restored.flatten();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameBits(a[i], b[i]));
}

TEST(Sections, TruncatedParamTableRejected)
{
    params::ParamTable table(4);
    std::string payload = encodeParamTable(table);
    EXPECT_THROW(
        decodeParamTable(
            std::string_view(payload).substr(0, payload.size() - 3)),
        std::runtime_error);
}

TEST(Sections, SamplingDistRoundTrip)
{
    params::SamplingDist original = params::SamplingDist::usim();
    original.writeLatencyMax = 17;
    original.robMin = 3;
    const params::SamplingDist restored =
        decodeSamplingDist(encodeSamplingDist(original));
    EXPECT_EQ(restored.writeLatencyMax, 17);
    EXPECT_EQ(restored.robMin, 3);
    EXPECT_EQ(restored.uopsMax, original.uopsMax);
    EXPECT_EQ(restored.mask.writeLatency, original.mask.writeLatency);
    EXPECT_EQ(restored.mask.numMicroOps, original.mask.numMicroOps);
    EXPECT_EQ(restored.mask.globals, original.mask.globals);
}

TEST(Checkpoint, FileRoundTripReproducesPredictions)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.seed = 99;
    surrogate::Model model(cfg, isa::theVocab().size());
    const params::SamplingDist dist = params::SamplingDist::full();
    const params::ParamTable table(isa::theIsa().numOpcodes());

    TempFile file("roundtrip.ckpt");
    saveCheckpoint(file.path(), &model, &dist, &table);
    Checkpoint loaded = loadCheckpoint(file.path());

    ASSERT_TRUE(loaded.model);
    EXPECT_EQ(loaded.vocabSize, isa::theVocab().size());
    ASSERT_TRUE(loaded.dist);
    ASSERT_TRUE(loaded.table);
    EXPECT_EQ(loaded.model->config().hidden, 10);

    // Same predictions, bit for bit.
    for (const char *text :
         {"ADD32rr %ebx, %ecx\nNOP\n", "IMUL64rr %rbx, %rcx\n",
          "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n"}) {
        auto block = surrogate::encodeBlock(isa::parseBlock(text));
        EXPECT_TRUE(
            sameBits(model.predict(block), loaded.model->predict(block)));
    }
}

TEST(Checkpoint, F32WeightsRoundTrip)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.seed = 7;
    surrogate::Model model(cfg, isa::theVocab().size());

    TempFile f64_file("f64.ckpt");
    TempFile f32_file("f32.ckpt");
    saveCheckpoint(f64_file.path(), &model, nullptr, nullptr);
    saveCheckpoint(f32_file.path(), &model, nullptr, nullptr,
                   nn::Precision::kF32);

    // The f32 file is a version-2 artifact at roughly half the
    // weight bytes.
    const auto f64_size =
        std::filesystem::file_size(f64_file.path());
    const auto f32_size =
        std::filesystem::file_size(f32_file.path());
    EXPECT_LT(f32_size, f64_size * 3 / 4);
    {
        std::ifstream in(f32_file.path(), std::ios::binary);
        char header[9] = {};
        in.read(header, 9);
        EXPECT_EQ(uint8_t(header[8]), 2);
    }

    Checkpoint loaded = loadCheckpoint(f32_file.path());
    ASSERT_TRUE(loaded.model);
    EXPECT_EQ(loaded.weightPrecision, nn::Precision::kF32);
    // Every loaded weight is the float-narrowed original, exactly.
    const nn::ParamSet &orig = model.params();
    const nn::ParamSet &back = loaded.model->params();
    ASSERT_EQ(orig.count(), back.count());
    for (size_t p = 0; p < orig.count(); ++p)
        for (size_t i = 0; i < orig[int(p)].data.size(); ++i)
            EXPECT_TRUE(
                sameBits(double(float(orig[int(p)].data[i])),
                         back[int(p)].data[i]));
    // An f32 round trip is idempotent: saving the narrowed model
    // again reproduces the same weights.
    TempFile again("f32b.ckpt");
    saveCheckpoint(again.path(), loaded.model.get(), nullptr,
                   nullptr, nn::Precision::kF32);
    Checkpoint twice = loadCheckpoint(again.path());
    for (size_t p = 0; p < back.count(); ++p)
        for (size_t i = 0; i < back[int(p)].data.size(); ++i)
            EXPECT_TRUE(sameBits(back[int(p)].data[i],
                                 twice.model->params()[int(p)]
                                     .data[i]));
}

TEST(Checkpoint, TableOnlyCheckpoint)
{
    params::ParamTable table(isa::theIsa().numOpcodes());
    table.dispatchWidth = 6.0;
    TempFile file("table_only.ckpt");
    saveTableCheckpoint(file.path(), table);
    Checkpoint loaded = loadCheckpoint(file.path());
    EXPECT_FALSE(loaded.model);
    EXPECT_FALSE(loaded.dist);
    ASSERT_TRUE(loaded.table);
    EXPECT_EQ(loaded.table->dispatchWidth, 6.0);
}

TEST(Checkpoint, ConfigWithoutWeightsRejected)
{
    // Handcraft a container with a model config but no weights.
    surrogate::ModelConfig cfg;
    surrogate::Model model(cfg, isa::theVocab().size());
    TempFile file("full.ckpt");
    saveCheckpoint(file.path(), &model, nullptr, nullptr);

    ChunkReader reader = ChunkReader::fromFile(file.path());
    ChunkWriter writer;
    writer.add(tagModelConfig,
               std::string(reader.payload(tagModelConfig)));
    TempFile broken("config_only.ckpt");
    writer.writeFile(broken.path());
    EXPECT_THROW(loadCheckpoint(broken.path()), std::runtime_error);
}

TEST(Checkpoint, MissingFileRejected)
{
    EXPECT_THROW(loadCheckpoint("/nonexistent/difftune.ckpt"),
                 std::runtime_error);
    // And the message names the path the caller passed.
    try {
        loadCheckpoint("/nonexistent/difftune.ckpt");
        FAIL() << "expected a load failure";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what())
                      .find("/nonexistent/difftune.ckpt"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Checkpoint, StructuralErrorsNameThePathAndChunk)
{
    // Corrupt one payload byte of a saved file: the CRC failure must
    // name both the offending file and the chunk it hit, so a bad
    // artifact in a fleet of checkpoints is identifiable from the
    // message alone.
    surrogate::ModelConfig cfg;
    surrogate::Model model(cfg, isa::theVocab().size());
    TempFile file("named_errors.ckpt");
    saveCheckpoint(file.path(), &model, nullptr, nullptr);

    std::string bytes;
    {
        std::ifstream in(file.path(), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = std::move(buffer).str();
    }
    bytes[bytes.size() - 10] ^= 0x01; // inside the last (WTS0) chunk
    {
        std::ofstream out(file.path(),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), std::streamsize(bytes.size()));
    }
    try {
        loadCheckpoint(file.path());
        FAIL() << "expected a CRC failure";
    } catch (const std::runtime_error &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(file.path()), std::string::npos) << what;
        EXPECT_NE(what.find(tagModelWeights), std::string::npos)
            << what;
    }
}

TEST(Checkpoint, SectionDecodeErrorsNameThePathAndChunk)
{
    // A chunk whose CRC is fine but whose payload does not decode
    // (here: a truncated sampling-dist section) must also be tagged
    // with the file and the chunk name.
    ChunkWriter writer;
    writer.add(tagSamplingDist, "garbage");
    TempFile file("bad_dist.ckpt");
    writer.writeFile(file.path());
    try {
        loadCheckpoint(file.path());
        FAIL() << "expected a decode failure";
    } catch (const std::runtime_error &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(file.path()), std::string::npos) << what;
        EXPECT_NE(what.find(tagSamplingDist), std::string::npos)
            << what;
    }
}

TEST(Checkpoint, OversizedConfigDimensionsRejected)
{
    // A crafted config chunk demanding a terabyte-scale model must be
    // rejected before the Model is allocated: the implied weight
    // count is checked against the bytes the weights chunk holds.
    surrogate::ModelConfig cfg;
    surrogate::Model model(cfg, isa::theVocab().size());
    TempFile file("valid.ckpt");
    saveCheckpoint(file.path(), &model, nullptr, nullptr);
    ChunkReader valid = ChunkReader::fromFile(file.path());

    ByteWriter huge_config;
    huge_config.i32(1 << 20); // embedDim
    huge_config.i32(1 << 20); // hidden
    huge_config.i32(1);       // tokenLayers
    huge_config.i32(1);       // blockLayers
    huge_config.i32(0);       // paramDim
    huge_config.u64(0);       // seed
    huge_config.u64(uint64_t(1) << 40); // vocab
    ChunkWriter writer;
    writer.add(tagModelConfig, huge_config.take());
    writer.add(tagModelWeights,
               std::string(valid.payload(tagModelWeights)));
    TempFile crafted("huge_config.ckpt");
    writer.writeFile(crafted.path());
    EXPECT_THROW(loadCheckpoint(crafted.path()), std::runtime_error);
}

} // namespace
} // namespace difftune::io
