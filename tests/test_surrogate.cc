/**
 * @file
 * Tests for the Ithemal/DiffTune surrogate model: shapes, parameter
 * concatenation, determinism, and the ability to fit tiny datasets.
 */

#include <gtest/gtest.h>

#include "core/trainer.hh"
#include "isa/parse.hh"
#include "nn/optim.hh"
#include "surrogate/model.hh"

namespace difftune::surrogate
{
namespace
{

ModelConfig
tinyConfig(int param_dim)
{
    ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = param_dim;
    cfg.seed = 5;
    return cfg;
}

TEST(Model, PredictIsDeterministic)
{
    Model model(tinyConfig(0), isa::theVocab().size());
    auto block = encodeBlock(
        isa::parseBlock("ADD32rr %ebx, %ecx\nNOP\n"));
    EXPECT_EQ(model.predict(block), model.predict(block));
}

TEST(Model, DifferentBlocksDifferentPredictions)
{
    Model model(tinyConfig(0), isa::theVocab().size());
    auto a = encodeBlock(isa::parseBlock("ADD32rr %ebx, %ecx\n"));
    auto b = encodeBlock(isa::parseBlock("IMUL64rr %rbx, %rcx\n"));
    EXPECT_NE(model.predict(a), model.predict(b));
}

TEST(Model, ParamInputsChangePrediction)
{
    Model model(tinyConfig(3), isa::theVocab().size());
    auto block = encodeBlock(isa::parseBlock("ADD32rr %ebx, %ecx\n"));

    auto predictWith = [&](double v) {
        nn::Graph g;
        nn::Ctx ctx{g, model.params(), nullptr};
        nn::Tensor t(3, 1);
        t.data = {v, v, v};
        nn::Var pred = model.forward(ctx, block, {g.input(std::move(t))});
        return g.scalarValue(pred);
    };
    EXPECT_NE(predictWith(0.0), predictWith(1.0));
}

TEST(Model, ForwardChecksParamCount)
{
    Model model(tinyConfig(3), isa::theVocab().size());
    auto block = encodeBlock(isa::parseBlock("NOP\nNOP\n"));
    nn::Graph g;
    nn::Ctx ctx{g, model.params(), nullptr};
    EXPECT_DEATH(model.forward(ctx, block, {}), "parameter vectors");
}

TEST(Model, SeedControlsInitialization)
{
    ModelConfig a = tinyConfig(0), b = tinyConfig(0);
    b.seed = 99;
    Model ma(a, isa::theVocab().size()), mb(b, isa::theVocab().size());
    auto block = encodeBlock(isa::parseBlock("NOP\n"));
    EXPECT_NE(ma.predict(block), mb.predict(block));
}

TEST(Model, CanOverfitTinyDataset)
{
    // Four blocks with arbitrary target timings: a tiny Ithemal must
    // drive the MAPE loss near zero.
    Model model(tinyConfig(0), isa::theVocab().size());
    const std::vector<std::pair<std::string, double>> samples = {
        {"ADD32rr %ebx, %ecx\n", 1.0},
        {"IMUL64rr %rbx, %rcx\nNOP\n", 3.0},
        {"PUSH64r %rbx\n", 0.5},
        {"MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n", 2.0},
    };
    std::vector<EncodedBlock> encoded;
    for (const auto &[text, timing] : samples)
        encoded.push_back(encodeBlock(isa::parseBlock(text)));

    nn::Adam adam(0.01);
    core::BatchRunner runner(model.params(), 2);
    double loss = 1e9;
    for (int step = 0; step < 300; ++step) {
        loss = runner.runBatch(
            0, samples.size(),
            [&](size_t i, nn::Graph &g, nn::Grads &grads) {
                nn::Ctx ctx{g, model.params(), &grads};
                nn::Var pred =
                    g.exp(model.forward(ctx, encoded[i], {}));
                nn::Var l = g.lossMape(pred, samples[i].second, 0.05);
                g.backward(l);
                return g.scalarValue(l);
            });
        runner.apply(model.params(), adam, 5.0);
    }
    EXPECT_LT(loss, 0.05);
}

TEST(EncodeBlock, MatchesVocab)
{
    auto block = isa::parseBlock("ADD32rr %ebx, %ecx\nNOP\n");
    auto encoded = encodeBlock(block);
    EXPECT_EQ(encoded.size(), 2u);
    EXPECT_EQ(encoded, isa::theVocab().encode(block));
}

} // namespace
} // namespace difftune::surrogate
