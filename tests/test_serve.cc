/**
 * @file
 * Tests for the prediction-serving engine: cache-hit behavior and
 * canonicalization, batched == sequential == uncached predictions
 * (bit-exact), invariance to the worker count, surrogate-mode input
 * handling, and checkpoint validation at load.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>

#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "serve/engine.hh"

namespace difftune::serve
{
namespace
{

surrogate::ModelConfig
tinyConfig(int param_dim)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = param_dim;
    cfg.seed = 5;
    return cfg;
}

/** An Ithemal-mode (paramDim 0) checkpoint, weights at init. */
io::Checkpoint
ithemalCheckpoint()
{
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(0), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    return ckpt;
}

/** A surrogate-mode checkpoint with table + sampling distribution. */
io::Checkpoint
surrogateCheckpoint()
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(norm.paramDim()), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    ckpt.dist = dist;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    return ckpt;
}

const std::vector<std::string> sampleBlocks = {
    "ADD32rr %ebx, %ecx\nNOP\n",
    "IMUL64rr %rbx, %rcx\n",
    "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n",
    "PUSH64r %rbx\nPOP64r %rbx\n",
    "ADD32rr %ebx, %ecx\nNOP\n", // repeat of the first
};

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(Engine, CacheHitBehavior)
{
    PredictionEngine engine(ithemalCheckpoint());
    const std::string text = sampleBlocks[0];

    const double first = engine.predict(text);
    EXPECT_EQ(engine.stats().requests, 1u);
    EXPECT_EQ(engine.stats().misses, 1u);
    EXPECT_EQ(engine.stats().hits, 0u);

    const double second = engine.predict(text);
    EXPECT_EQ(engine.stats().requests, 2u);
    EXPECT_EQ(engine.stats().misses, 1u);
    EXPECT_EQ(engine.stats().hits, 1u);
    EXPECT_TRUE(sameBits(first, second));
}

TEST(Engine, CacheKeyIsCanonicalized)
{
    PredictionEngine engine(ithemalCheckpoint());
    engine.predict("ADD32rr %ebx, %ecx\nNOP\n");
    // Comments and blank lines canonicalize away: same block, so the
    // second request must hit.
    engine.predict("# hot loop\n\nADD32rr %ebx, %ecx\n\nNOP\n");
    EXPECT_EQ(engine.stats().hits, 1u);
    EXPECT_EQ(engine.stats().misses, 1u);
}

TEST(Engine, BatchedEqualsSequential)
{
    PredictionEngine sequential(ithemalCheckpoint());
    PredictionEngine batched(ithemalCheckpoint());

    std::vector<double> expected;
    for (const auto &text : sampleBlocks)
        expected.push_back(sequential.predict(text));

    const std::vector<double> actual =
        batched.predictAll(sampleBlocks);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_TRUE(sameBits(actual[i], expected[i])) << "block " << i;

    // The in-batch repeat deduplicates to one forward pass but still
    // counts as a request.
    EXPECT_EQ(batched.stats().requests, sampleBlocks.size());
    EXPECT_EQ(batched.stats().hits + batched.stats().misses,
              sampleBlocks.size());
}

TEST(Engine, ResultsInvariantUnderWorkerCount)
{
    std::vector<double> reference;
    for (int workers : {1, 2, 3, 7}) {
        ServeConfig cfg;
        cfg.workers = workers;
        PredictionEngine engine(ithemalCheckpoint(), cfg);
        const auto results = engine.predictAll(sampleBlocks);
        if (reference.empty()) {
            reference = results;
            continue;
        }
        ASSERT_EQ(results.size(), reference.size());
        for (size_t i = 0; i < results.size(); ++i)
            EXPECT_TRUE(sameBits(results[i], reference[i]))
                << "workers " << workers << " block " << i;
    }
}

TEST(Engine, UncachedMatchesCached)
{
    PredictionEngine engine(ithemalCheckpoint());
    for (const auto &text : sampleBlocks) {
        const double uncached = engine.predictUncached(text);
        const double cached = engine.predict(text);
        EXPECT_TRUE(sameBits(uncached, cached));
    }
}

TEST(Engine, SurrogateModeMatchesManualForward)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    const params::SamplingDist dist = *ckpt.dist;
    const params::ParamTable table = *ckpt.table;
    // Keep an aliased model view for the manual reference pass; the
    // engine owns the model but never mutates it.
    const surrogate::Model &model = *ckpt.model;
    PredictionEngine engine(std::move(ckpt));

    const core::ParamNormalizer norm(dist);
    for (const auto &text : sampleBlocks) {
        const auto block = isa::parseBlock(text);
        nn::Graph graph;
        nn::Ctx ctx{graph, model.params(), nullptr};
        auto inputs = core::constParamInputs(graph, table, block, norm);
        nn::Var pred = graph.exp(
            model.forward(ctx, surrogate::encodeBlock(block), inputs));
        EXPECT_TRUE(
            sameBits(engine.predict(text), graph.scalarValue(pred)));
    }
}

TEST(Engine, LruEvictionKeepsServing)
{
    ServeConfig cfg;
    cfg.cacheCapacity = 2;
    PredictionEngine engine(ithemalCheckpoint(), cfg);
    std::vector<double> first;
    for (const auto &text : sampleBlocks)
        first.push_back(engine.predict(text));
    // Everything was evicted at least once along the way; a second
    // sweep still returns identical predictions.
    for (size_t i = 0; i < sampleBlocks.size(); ++i)
        EXPECT_TRUE(sameBits(engine.predict(sampleBlocks[i]), first[i]));
}

TEST(Engine, FileRoundTripServesIdentically)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "difftune_serve_roundtrip.ckpt")
            .string();
    io::saveCheckpoint(path, ckpt.model.get(), &*ckpt.dist,
                       &*ckpt.table);

    PredictionEngine original(std::move(ckpt));
    PredictionEngine restored = PredictionEngine::fromFile(path);
    std::remove(path.c_str());

    for (const auto &text : sampleBlocks)
        EXPECT_TRUE(sameBits(original.predict(text),
                             restored.predict(text)));
}

TEST(Engine, RejectsCheckpointWithoutModel)
{
    io::Checkpoint ckpt;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsSurrogateWithoutTable)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    ckpt.table.reset();
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsSurrogateWithoutDist)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    ckpt.dist.reset();
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsVocabMismatch)
{
    io::Checkpoint ckpt = ithemalCheckpoint();
    ckpt.vocabSize += 1;
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsEmptyBlock)
{
    PredictionEngine engine(ithemalCheckpoint());
    EXPECT_THROW(engine.predict("# only a comment\n"),
                 std::runtime_error);
    // Also catchable from the batched path: the validation must run
    // on the submit thread, not inside a worker shard.
    EXPECT_THROW(
        engine.predictAll({sampleBlocks[0], "# only a comment\n"}),
        std::runtime_error);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_NE(cache.get(1), nullptr); // refresh 1; 2 is now LRU
    cache.put(3, 30);                 // evicts 2
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 10);
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(*cache.get(3), 30);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutRefreshesExistingKey)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.put(1, 11); // refresh + overwrite; 2 is now LRU
    cache.put(3, 30); // evicts 2
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 11);
    EXPECT_EQ(cache.get(2), nullptr);
}

} // namespace
} // namespace difftune::serve
