/**
 * @file
 * Tests for the prediction-serving engine: cache-hit behavior and
 * canonicalization, batched == sequential == uncached predictions
 * (bit-exact), batch boundary conditions (batch of one, batches
 * larger than the shard working set, ragged block lengths crossing
 * the lockstep masking path), invariance to the worker count,
 * surrogate-mode input handling, the f32 serving mode and its
 * checkpoint round trip, checkpoint validation at load, and
 * path-naming load errors. The engine under test is the v1
 * synchronous wrapper over serve::AsyncEngine; the v2 concurrency
 * surface is covered by tests/test_serve_async.cc.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "serve/engine.hh"
#include "serve/lru_cache.hh"

namespace difftune::serve
{
namespace
{

surrogate::ModelConfig
tinyConfig(int param_dim)
{
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = param_dim;
    cfg.seed = 5;
    return cfg;
}

/** An Ithemal-mode (paramDim 0) checkpoint, weights at init. */
io::Checkpoint
ithemalCheckpoint()
{
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(0), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    return ckpt;
}

/** A surrogate-mode checkpoint with table + sampling distribution. */
io::Checkpoint
surrogateCheckpoint()
{
    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    io::Checkpoint ckpt;
    ckpt.model = std::make_unique<surrogate::Model>(
        tinyConfig(norm.paramDim()), isa::theVocab().size());
    ckpt.vocabSize = isa::theVocab().size();
    ckpt.dist = dist;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    return ckpt;
}

const std::vector<std::string> sampleBlocks = {
    "ADD32rr %ebx, %ecx\nNOP\n",
    "IMUL64rr %rbx, %rcx\n",
    "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n",
    "PUSH64r %rbx\nPOP64r %rbx\n",
    "ADD32rr %ebx, %ecx\nNOP\n", // repeat of the first
};

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(Engine, CacheHitBehavior)
{
    PredictionEngine engine(ithemalCheckpoint());
    const std::string text = sampleBlocks[0];

    const double first = engine.predict(text);
    EXPECT_EQ(engine.stats().requests, 1u);
    EXPECT_EQ(engine.stats().misses, 1u);
    EXPECT_EQ(engine.stats().hits, 0u);
    EXPECT_EQ(engine.stats().textMisses, 1u);
    EXPECT_EQ(engine.stats().textHits, 0u);

    const double second = engine.predict(text);
    EXPECT_EQ(engine.stats().requests, 2u);
    EXPECT_EQ(engine.stats().misses, 1u);
    EXPECT_EQ(engine.stats().hits, 1u);
    // The repeat was answered by the raw-text front cache, and the
    // front cache has its own counters now.
    EXPECT_EQ(engine.stats().textHits, 1u);
    EXPECT_EQ(engine.stats().textMisses, 1u);
    EXPECT_TRUE(sameBits(first, second));
}

TEST(Engine, CacheKeyIsCanonicalized)
{
    PredictionEngine engine(ithemalCheckpoint());
    engine.predict("ADD32rr %ebx, %ecx\nNOP\n");
    // Comments and blank lines canonicalize away: same block, so the
    // second request must hit.
    engine.predict("# hot loop\n\nADD32rr %ebx, %ecx\n\nNOP\n");
    EXPECT_EQ(engine.stats().hits, 1u);
    EXPECT_EQ(engine.stats().misses, 1u);
    // Distinct raw texts: the hit came from the canonical cache,
    // past the raw-text front cache.
    EXPECT_EQ(engine.stats().textHits, 0u);
    EXPECT_EQ(engine.stats().textMisses, 2u);
}

TEST(Engine, BatchedEqualsSequential)
{
    PredictionEngine sequential(ithemalCheckpoint());
    PredictionEngine batched(ithemalCheckpoint());

    std::vector<double> expected;
    for (const auto &text : sampleBlocks)
        expected.push_back(sequential.predict(text));

    const std::vector<double> actual =
        batched.predictAll(sampleBlocks);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_TRUE(sameBits(actual[i], expected[i])) << "block " << i;

    // The in-batch repeat deduplicates to one forward pass but still
    // counts as a request.
    EXPECT_EQ(batched.stats().requests, sampleBlocks.size());
    EXPECT_EQ(batched.stats().hits + batched.stats().misses,
              sampleBlocks.size());
}

TEST(Engine, BatchOfOneMatchesSingleAndUncached)
{
    PredictionEngine batched(ithemalCheckpoint());
    PredictionEngine single(ithemalCheckpoint());
    for (const auto &text : sampleBlocks) {
        const auto results = batched.predictAll({text});
        ASSERT_EQ(results.size(), 1u);
        EXPECT_TRUE(sameBits(results[0], single.predict(text)));
        EXPECT_TRUE(
            sameBits(results[0], single.predictUncached(text)));
    }
}

TEST(Engine, BatchLargerThanShardWorkingSet)
{
    // A single batch far larger than any shard's per-wave share (and
    // than the earlier tests' working sets), with every block length
    // in [1, ~8] represented: one predictAll spanning the whole
    // generated corpus must match a block-at-a-time engine bit for
    // bit.
    const auto corpus = bhive::Corpus::generate(96, 0x5eed1);
    std::vector<std::string> texts;
    for (size_t i = 0; i < corpus.size(); ++i)
        texts.push_back(isa::toString(corpus[i].block));

    PredictionEngine batched(surrogateCheckpoint());
    PredictionEngine sequential(surrogateCheckpoint());
    const auto results = batched.predictAll(texts);
    ASSERT_EQ(results.size(), texts.size());
    for (size_t i = 0; i < texts.size(); ++i)
        EXPECT_TRUE(
            sameBits(results[i], sequential.predict(texts[i])))
            << "block " << i;
}

TEST(Engine, RaggedBlockLengthsCrossTheMaskPath)
{
    // Lengths 1, 2, 5, 9 and 3 in one batch: every lockstep step
    // retires a different subset of lanes, so each block's forward
    // pass crosses the length-masking path at a different point.
    const std::vector<std::string> ragged = {
        "NOP\n",
        "ADD32rr %ebx, %ecx\nIMUL64rr %rbx, %rcx\n",
        "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n"
        "IMUL64rr %rbx, %rcx\nCMP64rr %rcx, %rdx\nPUSH64r %rbx\n",
        "NOP\nNOP\nADD32rr %ebx, %ecx\nPUSH64r %rbx\nPOP64r %rcx\n"
        "IMUL64rr %rbx, %rcx\nCMP64rr %rcx, %rdx\nNOP\n"
        "ADD64rr %rdi, %rbx\n",
        "PUSH64r %rbx\nPOP64r %rcx\nADD32rr %ebx, %ecx\n",
    };
    PredictionEngine batched(surrogateCheckpoint());
    PredictionEngine sequential(surrogateCheckpoint());
    const auto results = batched.predictAll(ragged);
    for (size_t i = 0; i < ragged.size(); ++i)
        EXPECT_TRUE(
            sameBits(results[i], sequential.predict(ragged[i])))
            << "block " << i;
    // And submission order must not matter.
    PredictionEngine reversed(surrogateCheckpoint());
    const std::vector<std::string> rev(ragged.rbegin(),
                                       ragged.rend());
    const auto back = reversed.predictAll(rev);
    for (size_t i = 0; i < ragged.size(); ++i)
        EXPECT_TRUE(sameBits(back[ragged.size() - 1 - i],
                             results[i]))
            << "block " << i;
}

TEST(Engine, ResultsInvariantUnderWorkerCount)
{
    std::vector<double> reference;
    for (int workers : {1, 2, 3, 7}) {
        ServeConfig cfg;
        cfg.workers = workers;
        PredictionEngine engine(ithemalCheckpoint(), cfg);
        const auto results = engine.predictAll(sampleBlocks);
        if (reference.empty()) {
            reference = results;
            continue;
        }
        ASSERT_EQ(results.size(), reference.size());
        for (size_t i = 0; i < results.size(); ++i)
            EXPECT_TRUE(sameBits(results[i], reference[i]))
                << "workers " << workers << " block " << i;
    }
}

TEST(Engine, UncachedMatchesCached)
{
    PredictionEngine engine(ithemalCheckpoint());
    for (const auto &text : sampleBlocks) {
        const double uncached = engine.predictUncached(text);
        const double cached = engine.predict(text);
        EXPECT_TRUE(sameBits(uncached, cached));
    }
}

TEST(Engine, SurrogateModeMatchesManualForward)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    const params::SamplingDist dist = *ckpt.dist;
    const params::ParamTable table = *ckpt.table;
    // Keep an aliased model view for the manual reference pass; the
    // engine owns the model but never mutates it.
    const surrogate::Model &model = *ckpt.model;
    PredictionEngine engine(std::move(ckpt));

    const core::ParamNormalizer norm(dist);
    for (const auto &text : sampleBlocks) {
        const auto block = isa::parseBlock(text);
        nn::Graph graph;
        nn::Ctx ctx{graph, model.params(), nullptr};
        auto inputs = core::constParamInputs(graph, table, block, norm);
        nn::Var pred = graph.exp(
            model.forward(ctx, surrogate::encodeBlock(block), inputs));
        EXPECT_TRUE(
            sameBits(engine.predict(text), graph.scalarValue(pred)));
    }
}

TEST(Engine, LruEvictionKeepsServing)
{
    ServeConfig cfg;
    cfg.cacheCapacity = 2;
    PredictionEngine engine(ithemalCheckpoint(), cfg);
    std::vector<double> first;
    for (const auto &text : sampleBlocks)
        first.push_back(engine.predict(text));
    // Everything was evicted at least once along the way; a second
    // sweep still returns identical predictions.
    for (size_t i = 0; i < sampleBlocks.size(); ++i)
        EXPECT_TRUE(sameBits(engine.predict(sampleBlocks[i]), first[i]));
}

TEST(Engine, FileRoundTripServesIdentically)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "difftune_serve_roundtrip.ckpt")
            .string();
    io::saveCheckpoint(path, ckpt.model.get(), &*ckpt.dist,
                       &*ckpt.table);

    PredictionEngine original(std::move(ckpt));
    PredictionEngine restored = PredictionEngine::fromFile(path);
    std::remove(path.c_str());

    for (const auto &text : sampleBlocks)
        EXPECT_TRUE(sameBits(original.predict(text),
                             restored.predict(text)));
}

TEST(Engine, F32ModeTracksDoubleWithinGate)
{
    PredictionEngine f64_engine(surrogateCheckpoint());
    ServeConfig cfg;
    cfg.precision = nn::Precision::kF32;
    PredictionEngine f32_engine(surrogateCheckpoint(), cfg);
    EXPECT_EQ(f32_engine.precision(), nn::Precision::kF32);

    const auto corpus = bhive::Corpus::generate(64, 0xf32);
    double worst = 0.0;
    for (size_t i = 0; i < corpus.size(); ++i) {
        const std::string text = isa::toString(corpus[i].block);
        const double a = f64_engine.predict(text);
        const double b = f32_engine.predict(text);
        const double rel = std::fabs(a - b) / std::fabs(a);
        EXPECT_LT(rel, 1e-5) << "block " << i;
        worst = std::max(worst, rel);
    }
    // The gate is not vacuous: f32 must actually differ somewhere.
    EXPECT_GT(worst, 0.0);
}

TEST(Engine, F32ModeSingleAndBatchedAgree)
{
    // Both cache-filling paths (batch-of-one predict and batched
    // predictAll) must run the same f32 execution mode — a mixed
    // cache would serve different bits for the same block depending
    // on how it was first requested.
    ServeConfig cfg;
    cfg.precision = nn::Precision::kF32;
    PredictionEngine single(ithemalCheckpoint(), cfg);
    PredictionEngine batched(ithemalCheckpoint(), cfg);
    const auto results = batched.predictAll(sampleBlocks);
    for (size_t i = 0; i < sampleBlocks.size(); ++i)
        EXPECT_TRUE(
            sameBits(results[i], single.predict(sampleBlocks[i])))
            << "block " << i;
}

TEST(Engine, F32CheckpointRoundTripsThroughInfoAndPredict)
{
    // An f32-weights checkpoint (the difftune_serve `convert` / info
    // / predict cycle at library level): the loaded file reports its
    // precision, and serving it through an f32 engine is
    // bit-identical to serving the original f64 checkpoint through
    // one — narrowing at save time and narrowing at load time are
    // the same function.
    io::Checkpoint original = surrogateCheckpoint();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "difftune_serve_f32_roundtrip.ckpt")
            .string();
    io::saveCheckpoint(path, original.model.get(), &*original.dist,
                       &*original.table, nn::Precision::kF32);

    io::Checkpoint reloaded = io::loadCheckpoint(path);
    std::remove(path.c_str());
    ASSERT_TRUE(reloaded.model);
    EXPECT_EQ(reloaded.weightPrecision, nn::Precision::kF32);
    EXPECT_EQ(reloaded.model->config().paramDim,
              original.model->config().paramDim);

    ServeConfig cfg;
    cfg.precision = nn::Precision::kF32;
    PredictionEngine from_f64(std::move(original), cfg);
    PredictionEngine from_f32(std::move(reloaded), cfg);
    for (const auto &text : sampleBlocks)
        EXPECT_TRUE(sameBits(from_f64.predict(text),
                             from_f32.predict(text)));
}

TEST(Engine, RejectsCheckpointWithoutModel)
{
    io::Checkpoint ckpt;
    ckpt.table = hw::defaultTable(hw::Uarch::Haswell);
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsSurrogateWithoutTable)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    ckpt.table.reset();
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsSurrogateWithoutDist)
{
    io::Checkpoint ckpt = surrogateCheckpoint();
    ckpt.dist.reset();
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, FromFileErrorsNameTheOffendingPath)
{
    // A missing file names the path...
    try {
        PredictionEngine::fromFile("/nonexistent/missing.ckpt");
        FAIL() << "expected a load failure";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what())
                      .find("/nonexistent/missing.ckpt"),
                  std::string::npos)
            << error.what();
    }
    // ...and so does a file that loads but cannot be served (a
    // surrogate-shaped model saved without its parameter table).
    io::Checkpoint ckpt = surrogateCheckpoint();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "difftune_serve_no_table.ckpt")
            .string();
    io::saveCheckpoint(path, ckpt.model.get(), nullptr, nullptr);
    try {
        PredictionEngine::fromFile(path);
        std::remove(path.c_str());
        FAIL() << "expected a validation failure";
    } catch (const std::runtime_error &error) {
        std::remove(path.c_str());
        const std::string what = error.what();
        EXPECT_NE(what.find(path), std::string::npos) << what;
        EXPECT_NE(what.find("parameter table"), std::string::npos)
            << what;
    }
}

TEST(Engine, RejectsVocabMismatch)
{
    io::Checkpoint ckpt = ithemalCheckpoint();
    ckpt.vocabSize += 1;
    EXPECT_THROW(PredictionEngine{std::move(ckpt)},
                 std::runtime_error);
}

TEST(Engine, RejectsEmptyBlock)
{
    PredictionEngine engine(ithemalCheckpoint());
    EXPECT_THROW(engine.predict("# only a comment\n"),
                 std::runtime_error);
    // Also catchable from the batched path: the validation must run
    // on the submit thread, not inside a worker shard.
    EXPECT_THROW(
        engine.predictAll({sampleBlocks[0], "# only a comment\n"}),
        std::runtime_error);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    ASSERT_NE(cache.get(1), nullptr); // refresh 1; 2 is now LRU
    cache.put(3, 30);                 // evicts 2
    EXPECT_EQ(cache.get(2), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 10);
    ASSERT_NE(cache.get(3), nullptr);
    EXPECT_EQ(*cache.get(3), 30);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutRefreshesExistingKey)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.put(1, 11); // refresh + overwrite; 2 is now LRU
    cache.put(3, 30); // evicts 2
    ASSERT_NE(cache.get(1), nullptr);
    EXPECT_EQ(*cache.get(1), 11);
    EXPECT_EQ(cache.get(2), nullptr);
}

} // namespace
} // namespace difftune::serve
